"""BT001: the pinned-constant table must catch real drift.

The key acceptance property: perturbing a paper constant in the *real*
``repro.bluetooth.constants`` source makes the lint fail with a
citation, while the shipped source passes untouched.
"""

from __future__ import annotations

import pytest

from repro.lint.rules.bluetooth_spec import CONSTANTS_MODULE, evaluate_constants
from repro.lint.spec import PAPER_SPEC

from .conftest import SRC_ROOT, lint_snippet

import ast

CONSTANTS_PATH = SRC_ROOT / "repro" / "bluetooth" / "constants.py"


def lint_constants(source: str):
    return [
        d
        for d in lint_snippet(source, module=CONSTANTS_MODULE)
        if d.rule == "BT001"
    ]


@pytest.fixture
def real_source() -> str:
    return CONSTANTS_PATH.read_text(encoding="utf-8")


class TestAgainstRealConstants:
    def test_shipped_constants_are_clean(self, real_source):
        assert lint_constants(real_source) == []

    def test_spec_covers_only_names_that_exist(self, real_source):
        _, nodes, _ = evaluate_constants(ast.parse(real_source))
        missing = [entry.name for entry in PAPER_SPEC if entry.name not in nodes]
        assert missing == []

    @pytest.mark.parametrize(
        "original,perturbed",
        [
            ("N_INQUIRY = 256", "N_INQUIRY = 255"),
            ("NUM_RF_CHANNELS = 79", "NUM_RF_CHANNELS = 80"),
            ("GIAC_LAP = 0x9E8B33", "GIAC_LAP = 0x9E8B34"),
        ],
    )
    def test_perturbed_constant_fails_with_citation(
        self, real_source, original, perturbed
    ):
        assert original in real_source, f"fixture drift: {original!r} not found"
        findings = lint_constants(real_source.replace(original, perturbed))
        name = original.split(" =", 1)[0]
        ours = [d for d in findings if name in d.message]
        assert ours, f"perturbing {name} produced no BT001 finding"
        assert any("diverges from the pinned" in d.message for d in ours)
        # Every BT001 message cites its spec/paper provenance.
        citations = {entry.name: entry.citation for entry in PAPER_SPEC}
        assert any(citations[name] in d.message for d in ours)

    def test_perturbing_a_base_constant_cascades(self, real_source):
        # N_INQUIRY feeds the dwell, the inquiry bound, and the BIPS
        # window; drift must surface in every derived value too.
        findings = lint_constants(
            real_source.replace("N_INQUIRY = 256", "N_INQUIRY = 255")
        )
        flagged = {
            entry.name
            for entry in PAPER_SPEC
            for d in findings
            if entry.name in d.message
        }
        assert {"N_INQUIRY", "TICKS_PER_TRAIN_DWELL", "INQUIRY_MAX_TICKS"} <= flagged


class TestRuleMechanics:
    def test_missing_constant_flagged(self):
        findings = lint_constants("NUM_RF_CHANNELS = 79\n")
        assert any("is missing" in d.message for d in findings)

    def test_unevaluable_constant_flagged(self):
        source = "import os\n\nN_INQUIRY = int(os.environ['N'])\n"
        findings = lint_constants(source)
        assert any(
            "N_INQUIRY" in d.message and "could not be statically evaluated" in d.message
            for d in findings
        )

    def test_rule_only_applies_to_the_constants_module(self):
        diagnostics = lint_snippet("N_INQUIRY = 255\n", module="repro.bluetooth.other")
        assert [d for d in diagnostics if d.rule == "BT001"] == []

    def test_evaluator_folds_arithmetic_and_helpers(self):
        source = (
            "BASE = 16 * 2\n"
            "DERIVED = BASE * 256\n"
            "WINDOW = ticks_from_seconds(3.84)\n"
            "NEG = -BASE\n"
        )
        values, _, unevaluable = evaluate_constants(ast.parse(source))
        assert values["BASE"] == 32
        assert values["DERIVED"] == 8192
        assert values["WINDOW"] == 12288
        assert values["NEG"] == -32
        assert unevaluable == set()
