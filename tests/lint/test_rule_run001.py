"""RUN001: mutable defaults and module-level mutable state."""

from __future__ import annotations

from .conftest import lint_snippet, rules_hit

MOD = "repro.experiments.bad"


class TestMutableDefaults:
    def test_list_default_flagged(self):
        source = "def f(items=[]):\n    return items\n"
        assert "RUN001" in rules_hit(source, module=MOD)

    def test_dict_constructor_default_flagged(self):
        source = "def f(cache=dict()):\n    return cache\n"
        assert "RUN001" in rules_hit(source, module=MOD)

    def test_keyword_only_default_flagged(self):
        source = "def f(*, seen=set()):\n    return seen\n"
        assert "RUN001" in rules_hit(source, module=MOD)

    def test_none_default_is_the_fix(self):
        source = (
            "def f(items=None):\n"
            "    items = [] if items is None else items\n"
            "    return items\n"
        )
        assert "RUN001" not in rules_hit(source, module=MOD)

    def test_immutable_defaults_are_fine(self):
        source = "def f(pair=(1, 2), name='x', flags=frozenset()):\n    return pair\n"
        assert "RUN001" not in rules_hit(source, module=MOD)

    def test_message_names_the_function(self):
        source = "def payload(acc=[]):\n    return acc\n"
        (finding,) = [
            d for d in lint_snippet(source, module=MOD) if d.rule == "RUN001"
        ]
        assert "payload()" in finding.message


class TestModuleLevelState:
    def test_module_level_dict_flagged(self):
        assert "RUN001" in rules_hit("CACHE = {}\n", module="repro.core.bad")

    def test_module_level_list_flagged(self):
        assert "RUN001" in rules_hit("RESULTS = []\n", module="repro.sim.bad")

    def test_dunder_all_is_exempt(self):
        assert "RUN001" not in rules_hit(
            "__all__ = ['a', 'b']\n", module="repro.sim.bad"
        )

    def test_mapping_proxy_is_the_sanctioned_form(self):
        source = (
            "from types import MappingProxyType\n\n"
            "PAPER_REFERENCE = MappingProxyType({'same': 1.6028})\n"
        )
        assert "RUN001" not in rules_hit(source, module=MOD)

    def test_tuple_of_entries_is_fine(self):
        assert "RUN001" not in rules_hit("SPEC = (1, 2, 3)\n", module=MOD)

    def test_function_local_containers_are_fine(self):
        source = "def f():\n    acc = []\n    return acc\n"
        assert "RUN001" not in rules_hit(source, module=MOD)

    def test_non_worker_packages_are_out_of_scope(self):
        assert "RUN001" not in rules_hit("CACHE = {}\n", module="repro.lint.bad")
        assert "RUN001" not in rules_hit("CACHE = {}\n", module="repro.cli")
