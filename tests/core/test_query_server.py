"""Tests for the query engine and the message-driven central server."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.building.layouts import academic_department, linear_wing
from repro.core.errors import AccessDeniedError, NotLoggedInError, UnknownUserError
from repro.core.location_db import LocationDatabase
from repro.core.pathfinding import AllPairsPaths
from repro.core.query import QueryEngine
from repro.core.registry import UserRegistry, VisibilityPolicy
from repro.core.server import BIPSServer
from repro.lan.messages import (
    LocationQuery,
    LocationResponse,
    LoginRequest,
    LoginResponse,
    LogoutRequest,
    PathQuery,
    PathResponse,
    PresenceUpdate,
    WorkstationHello,
)
from repro.lan.transport import LANTransport

ALICE_DEV = BDAddr(0x100)
BOB_DEV = BDAddr(0x200)


@pytest.fixture
def engine() -> QueryEngine:
    registry = UserRegistry()
    registry.register("u-alice", "Alice", "pw")
    registry.register("u-bob", "Bob", "pw")
    registry.login("u-alice", "pw", ALICE_DEV, tick=0)
    registry.login("u-bob", "pw", BOB_DEV, tick=0)
    db = LocationDatabase()
    paths = AllPairsPaths.from_floorplan(linear_wing(4))
    return QueryEngine(registry, db, paths)


class TestQueryEngine:
    def test_locate_known_target(self, engine):
        engine.location_db.apply_presence(ALICE_DEV, "wing-2", 100, "ws")
        assert engine.locate("u-bob", "Alice") == "wing-2"
        assert engine.stats.location_queries == 1

    def test_locate_untracked_target_returns_none(self, engine):
        assert engine.locate("u-bob", "Alice") is None
        assert engine.stats.location_unknown == 1

    def test_locate_denied_counted(self, engine):
        engine.registry.logout("u-alice")
        with pytest.raises(NotLoggedInError):
            engine.locate("u-bob", "Alice")
        assert engine.stats.location_denied == 1
        assert engine.stats.by_error.get("NotLoggedInError") == 1

    def test_navigate_full_path(self, engine):
        engine.location_db.apply_presence(BOB_DEV, "wing-0", 100, "ws")
        engine.location_db.apply_presence(ALICE_DEV, "wing-3", 100, "ws")
        path = engine.navigate("u-bob", "Alice")
        assert path.rooms == ("wing-0", "wing-1", "wing-2", "wing-3")
        assert engine.stats.path_queries == 1
        # navigate() does not double-count as a location query
        assert engine.stats.location_queries == 0

    def test_navigate_untracked_endpoint_returns_none(self, engine):
        engine.location_db.apply_presence(ALICE_DEV, "wing-3", 100, "ws")
        assert engine.navigate("u-bob", "Alice") is None  # bob untracked

    def test_navigate_same_room(self, engine):
        engine.location_db.apply_presence(BOB_DEV, "wing-1", 100, "ws")
        engine.location_db.apply_presence(ALICE_DEV, "wing-1", 100, "ws")
        path = engine.navigate("u-bob", "Alice")
        assert path.rooms == ("wing-1",)
        assert path.total_distance_m == 0.0


@pytest.fixture
def server_env(kernel):
    lan = LANTransport(kernel)
    server = BIPSServer(kernel, lan, academic_department())
    inbox = []
    lan.register("client", lambda src, msg: inbox.append(msg))
    server.registry.register("u-alice", "Alice", "pw")
    server.registry.register("u-bob", "Bob", "pw")
    return kernel, lan, server, inbox


class TestServerMessages:
    def test_workstation_hello_registers_room(self, server_env):
        kernel, lan, server, _ = server_env
        lan.send("ws:lab-1", "server", WorkstationHello(0, "ws:lab-1", "lab-1"))
        kernel.run_until(100)
        assert server.room_of_workstation("ws:lab-1") == "lab-1"
        assert server.workstation_count == 1

    def test_presence_update_flows_to_db(self, server_env):
        kernel, lan, server, _ = server_env
        lan.send("ws:lab-1", "server", WorkstationHello(0, "ws:lab-1", "lab-1"))
        kernel.run_until(10)
        lan.send("ws:lab-1", "server", PresenceUpdate(10, "ws:lab-1", ALICE_DEV, True))
        kernel.run_until(100)
        assert server.location_db.current_room(ALICE_DEV) == "lab-1"

    def test_presence_from_unknown_workstation_ignored(self, server_env):
        kernel, lan, server, _ = server_env
        lan.send("ws:ghost", "server", PresenceUpdate(0, "ws:ghost", ALICE_DEV, True))
        kernel.run_until(100)
        assert server.location_db.current_room(ALICE_DEV) is None
        assert server.unknown_workstation_updates == 1

    def test_absence_update(self, server_env):
        kernel, lan, server, _ = server_env
        lan.send("ws:lab-1", "server", WorkstationHello(0, "ws:lab-1", "lab-1"))
        kernel.run_until(10)
        lan.send("ws:lab-1", "server", PresenceUpdate(10, "ws:lab-1", ALICE_DEV, True))
        kernel.run_until(20)
        lan.send("ws:lab-1", "server", PresenceUpdate(20, "ws:lab-1", ALICE_DEV, False))
        kernel.run_until(100)
        assert server.location_db.current_room(ALICE_DEV) is None

    def test_login_roundtrip(self, server_env):
        kernel, lan, server, inbox = server_env
        lan.send("client", "server", LoginRequest(0, "u-alice", "pw", ALICE_DEV))
        kernel.run_until(100)
        assert len(inbox) == 1
        response = inbox[0]
        assert isinstance(response, LoginResponse) and response.ok
        assert server.registry.is_logged_in("u-alice")

    def test_login_failure_reported(self, server_env):
        kernel, lan, server, inbox = server_env
        lan.send("client", "server", LoginRequest(0, "u-alice", "WRONG", ALICE_DEV))
        kernel.run_until(100)
        assert not inbox[0].ok
        assert "password" in inbox[0].reason

    def test_logout_clears_tracking(self, server_env):
        kernel, lan, server, _ = server_env
        server.registry.login("u-alice", "pw", ALICE_DEV, tick=0)
        lan.send("ws:lab-1", "server", WorkstationHello(0, "ws:lab-1", "lab-1"))
        kernel.run_until(10)
        lan.send("ws:lab-1", "server", PresenceUpdate(10, "ws:lab-1", ALICE_DEV, True))
        kernel.run_until(20)
        lan.send("client", "server", LogoutRequest(20, "u-alice"))
        kernel.run_until(100)
        assert not server.registry.is_logged_in("u-alice")
        assert server.location_db.current_room(ALICE_DEV) is None

    def test_location_query_roundtrip(self, server_env):
        kernel, lan, server, inbox = server_env
        server.registry.login("u-alice", "pw", ALICE_DEV, tick=0)
        server.registry.login("u-bob", "pw", BOB_DEV, tick=0)
        lan.send("ws:lab-1", "server", WorkstationHello(0, "ws:lab-1", "lab-1"))
        kernel.run_until(10)
        lan.send("ws:lab-1", "server", PresenceUpdate(10, "ws:lab-1", ALICE_DEV, True))
        kernel.run_until(20)
        lan.send("client", "server", LocationQuery(20, "u-bob", "Alice", query_id=7))
        kernel.run_until(100)
        response = inbox[-1]
        assert isinstance(response, LocationResponse)
        assert response.ok and response.room_id == "lab-1" and response.query_id == 7

    def test_location_query_denied(self, server_env):
        kernel, lan, server, inbox = server_env
        server.registry.login("u-bob", "pw", BOB_DEV, tick=0)
        lan.send("client", "server", LocationQuery(0, "u-bob", "Alice", query_id=8))
        kernel.run_until(100)
        assert not inbox[-1].ok
        assert inbox[-1].room_id is None

    def test_path_query_roundtrip(self, server_env):
        kernel, lan, server, inbox = server_env
        server.registry.login("u-alice", "pw", ALICE_DEV, tick=0)
        server.registry.login("u-bob", "pw", BOB_DEV, tick=0)
        for room, device in (("lab-1", BOB_DEV), ("office-2", ALICE_DEV)):
            lan.send(f"ws:{room}", "server", WorkstationHello(0, f"ws:{room}", room))
            kernel.run_until(kernel.now + 10)
            lan.send(
                f"ws:{room}", "server",
                PresenceUpdate(kernel.now, f"ws:{room}", device, True),
            )
            kernel.run_until(kernel.now + 10)
        lan.send("client", "server", PathQuery(kernel.now, "u-bob", "Alice", query_id=9))
        kernel.run_until(kernel.now + 100)
        response = inbox[-1]
        assert isinstance(response, PathResponse)
        assert response.ok
        assert response.rooms[0] == "lab-1"
        assert response.rooms[-1] == "office-2"
        assert response.total_distance_m > 0

    def test_path_query_untracked_endpoint(self, server_env):
        kernel, lan, server, inbox = server_env
        server.registry.login("u-alice", "pw", ALICE_DEV, tick=0)
        server.registry.login("u-bob", "pw", BOB_DEV, tick=0)
        lan.send("client", "server", PathQuery(0, "u-bob", "Alice", query_id=10))
        kernel.run_until(100)
        response = inbox[-1]
        assert not response.ok
        assert "unknown" in response.reason

    def test_unknown_message_type_ignored(self, server_env):
        kernel, lan, server, _ = server_env
        lan.send("client", "server", "garbage string")
        kernel.run_until(100)  # no exception

    def test_direct_call_surface(self, server_env):
        kernel, lan, server, _ = server_env
        server.registry.login("u-alice", "pw", ALICE_DEV, tick=0)
        server.registry.login("u-bob", "pw", BOB_DEV, tick=0)
        with pytest.raises(UnknownUserError):
            server.locate("u-bob", "Ghost")
        assert server.locate("u-bob", "Alice") is None
