"""Tests for the presence tracker's delta logic and hysteresis."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.core.tracker import PresenceTracker

A, B, C = BDAddr(1), BDAddr(2), BDAddr(3)


class TestDeltas:
    def test_first_sighting_is_new_presence(self):
        tracker = PresenceTracker()
        deltas = tracker.observe_cycle([A], tick=100)
        assert deltas.new_presences == (A,)
        assert deltas.new_absences == ()

    def test_repeat_sighting_reports_nothing(self):
        tracker = PresenceTracker()
        tracker.observe_cycle([A], tick=100)
        deltas = tracker.observe_cycle([A], tick=200)
        assert deltas.is_empty

    def test_multiple_devices(self):
        tracker = PresenceTracker()
        deltas = tracker.observe_cycle([B, A], tick=100)
        assert deltas.new_presences == (A, B)  # sorted by address

    def test_cycle_index_increments(self):
        tracker = PresenceTracker()
        first = tracker.observe_cycle([], tick=0)
        second = tracker.observe_cycle([], tick=100)
        assert (first.cycle_index, second.cycle_index) == (0, 1)
        assert tracker.cycles_completed == 2


class TestHysteresis:
    def test_single_miss_not_absent_with_threshold_two(self):
        tracker = PresenceTracker(miss_threshold=2)
        tracker.observe_cycle([A], tick=0)
        deltas = tracker.observe_cycle([], tick=100)
        assert deltas.is_empty
        assert A in tracker.present_devices

    def test_two_misses_declare_absence(self):
        tracker = PresenceTracker(miss_threshold=2)
        tracker.observe_cycle([A], tick=0)
        tracker.observe_cycle([], tick=100)
        deltas = tracker.observe_cycle([], tick=200)
        assert deltas.new_absences == (A,)
        assert A not in tracker.present_devices

    def test_sighting_resets_miss_counter(self):
        tracker = PresenceTracker(miss_threshold=2)
        tracker.observe_cycle([A], tick=0)
        tracker.observe_cycle([], tick=100)  # one miss
        tracker.observe_cycle([A], tick=200)  # seen again
        deltas = tracker.observe_cycle([], tick=300)  # one miss again
        assert deltas.is_empty
        assert A in tracker.present_devices

    def test_threshold_one_flaps_immediately(self):
        tracker = PresenceTracker(miss_threshold=1)
        tracker.observe_cycle([A], tick=0)
        deltas = tracker.observe_cycle([], tick=100)
        assert deltas.new_absences == (A,)

    def test_reappearance_after_absence_is_new_presence(self):
        tracker = PresenceTracker(miss_threshold=1)
        tracker.observe_cycle([A], tick=0)
        tracker.observe_cycle([], tick=100)
        deltas = tracker.observe_cycle([A], tick=200)
        assert deltas.new_presences == (A,)

    def test_absence_reported_once(self):
        tracker = PresenceTracker(miss_threshold=1)
        tracker.observe_cycle([A], tick=0)
        tracker.observe_cycle([], tick=100)
        deltas = tracker.observe_cycle([], tick=200)
        assert deltas.is_empty

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            PresenceTracker(miss_threshold=0)


class TestMixedPopulations:
    def test_independent_devices(self):
        tracker = PresenceTracker(miss_threshold=2)
        tracker.observe_cycle([A, B], tick=0)
        tracker.observe_cycle([A], tick=100)  # B misses once
        deltas = tracker.observe_cycle([A, C], tick=200)  # B misses twice, C arrives
        assert deltas.new_presences == (C,)
        assert deltas.new_absences == (B,)
        assert tracker.present_devices == {A, C}

    def test_counters(self):
        tracker = PresenceTracker(miss_threshold=1)
        tracker.observe_cycle([A, B], tick=0)
        tracker.observe_cycle([], tick=100)
        assert tracker.presences_reported == 2
        assert tracker.absences_reported == 2

    def test_force_absent(self):
        tracker = PresenceTracker()
        tracker.observe_cycle([A], tick=0)
        assert tracker.force_absent(A) is True
        assert A not in tracker.present_devices
        assert tracker.force_absent(A) is False

    def test_stale_absent_state_pruned(self):
        tracker = PresenceTracker(miss_threshold=1)
        tracker.observe_cycle([A], tick=0)
        tracker.observe_cycle([], tick=100)  # absent now
        for cycle in range(15):
            tracker.observe_cycle([], tick=200 + cycle * 100)
        # Internal state for A is dropped; a new sighting still works.
        deltas = tracker.observe_cycle([A], tick=5000)
        assert deltas.new_presences == (A,)
