"""Tests for the deployment planner."""

from __future__ import annotations

import pytest

from repro.building.floorplan import FloorPlan, Room
from repro.building.geometry import Point, Rect
from repro.building.layouts import academic_department, linear_wing
from repro.core.planner import plan_deployment
from repro.radio.propagation import CoverageModel


class TestPlanDeployment:
    def test_one_workstation_per_room(self):
        plan = plan_deployment(academic_department())
        assert plan.workstation_count == 12

    def test_small_rooms_covered(self):
        plan = plan_deployment(linear_wing(3))  # 10 m rooms
        assert plan.all_rooms_covered
        assert plan.warnings == []

    def test_oversized_room_flagged(self):
        plan = plan_deployment(academic_department())
        corridor = plan.room("corridor-w")
        assert not corridor.covered
        assert corridor.needs_attention
        assert any("West Corridor" in warning for warning in plan.warnings)

    def test_off_center_station_reduces_reach(self):
        """A station in the corner covers less than one at the centre."""
        # 13x13 m: centred reach = 9.2 m (< 10 m), cornered = 18.4 m.
        centred = FloorPlan.from_rooms(
            [Room("r", Rect(0, 0, 13, 13))], []
        )
        cornered = FloorPlan.from_rooms(
            [Room("r", Rect(0, 0, 13, 13), workstation_position=Point(0, 0))], []
        )
        assert plan_deployment(centred).room("r").covered
        assert not plan_deployment(cornered).room("r").covered

    def test_interference_tracks_neighbor_count(self):
        plan = plan_deployment(academic_department())
        corridor = plan.room("corridor-w")
        office = plan.room("office-4")
        assert corridor.neighbor_count > office.neighbor_count
        assert corridor.interference_loss > office.interference_loss

    def test_sub_dwell_window_warned(self):
        plan = plan_deployment(linear_wing(3), inquiry_window_seconds=1.92)
        assert any("train dwell" in warning for warning in plan.warnings)

    def test_policy_derived_from_coverage(self):
        small = plan_deployment(linear_wing(3), coverage=CoverageModel(radius_m=6.0),
                                inquiry_window_seconds=2.56)
        # 12 m diameter at 1.3 m/s -> ~9.2 s cycle.
        assert small.policy.operational_cycle_seconds == pytest.approx(12.0 / 1.3)

    def test_graph_diameter(self):
        plan = plan_deployment(linear_wing(5))
        assert plan.worst_case_walk_m == 40.0

    def test_unknown_room_lookup(self):
        plan = plan_deployment(linear_wing(3))
        with pytest.raises(KeyError):
            plan.room("ghost")

    def test_render(self):
        text = plan_deployment(academic_department()).render()
        assert "Deployment plan" in text
        assert "TOO BIG" in text
        assert "warnings:" in text
