"""Unit tests for the tracking-report arithmetic in the simulation facade."""

from __future__ import annotations

from repro.core.location_db import LocationEvent
from repro.core.simulation import _db_segments, _overlap_ticks, _timeline_segments
from repro.mobility.walker import RoomVisit, WalkTimeline


class TestTimelineSegments:
    def test_closed_visits(self):
        timeline = WalkTimeline(
            visits=[RoomVisit("a", 0, 100), RoomVisit("b", 100, 250)]
        )
        assert _timeline_segments(timeline, horizon=300) == [
            (0, 100, "a"),
            (100, 250, "b"),
        ]

    def test_open_final_visit_clipped_to_horizon(self):
        timeline = WalkTimeline(visits=[RoomVisit("a", 0, None)])
        assert _timeline_segments(timeline, horizon=500) == [(0, 500, "a")]

    def test_visit_beyond_horizon_dropped(self):
        timeline = WalkTimeline(
            visits=[RoomVisit("a", 0, 100), RoomVisit("b", 600, None)]
        )
        assert _timeline_segments(timeline, horizon=500) == [(0, 100, "a")]

    def test_visit_straddling_horizon_clipped(self):
        timeline = WalkTimeline(visits=[RoomVisit("a", 400, 800)])
        assert _timeline_segments(timeline, horizon=500) == [(400, 500, "a")]


class TestDbSegments:
    def test_events_become_segments(self):
        events = [
            LocationEvent(10, "a", "ws"),
            LocationEvent(50, "b", "ws"),
            LocationEvent(80, None, "ws"),
        ]
        assert _db_segments(events, horizon=100) == [(10, 50, "a"), (50, 80, "b")]

    def test_open_final_event_runs_to_horizon(self):
        events = [LocationEvent(10, "a", "ws")]
        assert _db_segments(events, horizon=100) == [(10, 100, "a")]

    def test_unknown_periods_excluded(self):
        events = [
            LocationEvent(10, None, "ws"),
            LocationEvent(50, "a", "ws"),
        ]
        assert _db_segments(events, horizon=100) == [(50, 100, "a")]

    def test_empty_history(self):
        assert _db_segments([], horizon=100) == []


class TestOverlap:
    def test_full_agreement(self):
        truth = [(0, 100, "a")]
        belief = [(0, 100, "a")]
        assert _overlap_ticks(truth, belief) == 100

    def test_partial_overlap(self):
        truth = [(0, 100, "a")]
        belief = [(60, 150, "a")]
        assert _overlap_ticks(truth, belief) == 40

    def test_room_mismatch_counts_zero(self):
        truth = [(0, 100, "a")]
        belief = [(0, 100, "b")]
        assert _overlap_ticks(truth, belief) == 0

    def test_multiple_segments(self):
        truth = [(0, 100, "a"), (100, 200, "b")]
        belief = [(50, 120, "a"), (120, 200, "b")]
        # a: [50,100) = 50; b: [120,200) = 80.
        assert _overlap_ticks(truth, belief) == 130

    def test_disjoint(self):
        assert _overlap_ticks([(0, 10, "a")], [(20, 30, "a")]) == 0
