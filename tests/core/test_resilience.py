"""Resilience features: soft-state refresh and workstation failure injection."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.bluetooth.device import BluetoothDevice
from repro.bluetooth.packets import FHSPacket
from repro.building.layouts import linear_wing, two_room_testbed
from repro.core.config import BIPSConfig
from repro.core.scheduler import MasterSchedulingPolicy
from repro.core.simulation import BIPSSimulation
from repro.core.workstation import Workstation
from repro.lan.messages import PresenceUpdate
from repro.lan.transport import LANTransport
from repro.sim.clock import ticks_from_seconds

DEV = BDAddr(0x55)
CYCLE = ticks_from_seconds(15.4)


@pytest.fixture
def workstation_env(kernel):
    def build(**kwargs):
        lan = LANTransport(kernel)
        inbox = []
        lan.register("server", lambda src, msg: inbox.append(msg))
        workstation = Workstation(
            kernel=kernel,
            workstation_id="ws:lab",
            room_id="lab",
            device=BluetoothDevice(address=BDAddr(0xF0)),
            policy=MasterSchedulingPolicy(),
            lan=lan,
            miss_threshold=2,
            **kwargs,
        )
        return workstation, inbox

    return build


def see(workstation, tick):
    workstation.inquiry._on_fhs(
        FHSPacket(sender=DEV, clkn=0, channel=0, tx_tick=tick), tick
    )


class TestRefresh:
    def test_refresh_reasserts_present_devices(self, kernel, workstation_env):
        workstation, inbox = workstation_env(refresh_interval_cycles=2)
        workstation.start(horizon_tick=5 * CYCLE)
        for window_index in range(5):
            see(workstation, window_index * CYCLE + 50)
            kernel.run_until((window_index + 1) * CYCLE)
        updates = [m for m in inbox if isinstance(m, PresenceUpdate)]
        # One initial delta plus one refresh at every 2nd cycle
        # (cycle indices 1 and 3).
        assert [u.present for u in updates] == [True, True, True]
        assert workstation.refreshes_sent == 2

    def test_refresh_skips_devices_just_reported(self, kernel, workstation_env):
        workstation, inbox = workstation_env(refresh_interval_cycles=1)
        workstation.start(horizon_tick=2 * CYCLE)
        see(workstation, 50)
        kernel.run_until(CYCLE)
        updates = [m for m in inbox if isinstance(m, PresenceUpdate)]
        # The refresh in the same window as the fresh delta is elided.
        assert len(updates) == 1

    def test_no_refresh_by_default(self, kernel, workstation_env):
        workstation, inbox = workstation_env()
        workstation.start(horizon_tick=6 * CYCLE)
        for window_index in range(6):
            see(workstation, window_index * CYCLE + 50)
            kernel.run_until((window_index + 1) * CYCLE)
        updates = [m for m in inbox if isinstance(m, PresenceUpdate)]
        assert len(updates) == 1
        assert workstation.refreshes_sent == 0

    def test_negative_interval_rejected(self, kernel, workstation_env):
        with pytest.raises(ValueError):
            workstation_env(refresh_interval_cycles=-1)

    def test_refresh_heals_lost_delta_end_to_end(self):
        """With 40% LAN loss, refresh recovers stranded devices."""

        def run(seed, refresh):
            sim = BIPSSimulation(
                plan=two_room_testbed(),
                config=BIPSConfig(
                    seed=seed,
                    lan_loss_probability=0.4,
                    refresh_interval_cycles=refresh,
                ),
            )
            sim.add_user("u-a", "A")
            sim.login("u-a")
            sim.follow_route("u-a", ["room-a"])
            sim.run(until_seconds=400.0)
            return sim.server.location_db.current_room(
                sim.user("u-a").device.address
            )

        seeds = range(30, 40)
        stranded_without = sum(1 for s in seeds if run(s, refresh=0) is None)
        stranded_with = sum(1 for s in seeds if run(s, refresh=2) is None)
        # Pure delta reporting strands some runs (the one presence delta
        # was dropped); the 2-cycle refresh heals every one of them.
        assert stranded_without >= 1
        assert stranded_with == 0


class TestFailureInjection:
    def test_failed_workstation_reports_nothing(self, kernel, workstation_env):
        workstation, inbox = workstation_env()
        workstation.start(horizon_tick=3 * CYCLE)
        workstation.set_failed(True)
        see(workstation, 50)
        kernel.run_until(3 * CYCLE)
        assert [m for m in inbox if isinstance(m, PresenceUpdate)] == []
        assert workstation.windows_evaluated == 0

    def test_recovery_rereports_still_present_devices(self, kernel, workstation_env):
        workstation, inbox = workstation_env()
        workstation.start(horizon_tick=4 * CYCLE)
        see(workstation, 50)
        kernel.run_until(CYCLE)  # presence reported
        workstation.set_failed(True)
        kernel.run_until(2 * CYCLE)
        workstation.set_failed(False)
        # Device still in the room, responds in window 3.
        see(workstation, 2 * CYCLE + 50)
        kernel.run_until(3 * CYCLE)
        updates = [m for m in inbox if isinstance(m, PresenceUpdate)]
        # Initial presence + fresh presence after the restart (the
        # crashed process lost its tracker state).
        assert [u.present for u in updates] == [True, True]

    def test_set_failed_idempotent(self, kernel, workstation_env):
        workstation, _ = workstation_env()
        workstation.set_failed(True)
        workstation.set_failed(True)
        workstation.set_failed(False)
        workstation.set_failed(False)
        assert not workstation.failed

    def test_simulation_failure_window_loses_tracking(self):
        """A room whose workstation is down goes dark, then recovers."""
        sim = BIPSSimulation(plan=linear_wing(3), config=BIPSConfig(seed=8))
        sim.add_user("u-a", "A")
        sim.add_user("u-b", "B")
        sim.login("u-a")
        sim.login("u-b")
        sim.follow_route("u-a", ["wing-1"])
        sim.fail_workstation("wing-1")  # down from the start
        sim.run(until_seconds=120.0)
        assert sim.server.locate("u-b", "A") is None
        sim.recover_workstation("wing-1")
        sim.run(until_seconds=240.0)
        assert sim.server.locate("u-b", "A") == "wing-1"

    def test_scheduled_failure_and_recovery(self):
        sim = BIPSSimulation(plan=linear_wing(3), config=BIPSConfig(seed=8))
        sim.add_user("u-a", "A")
        sim.login("u-a")
        sim.follow_route("u-a", ["wing-1"])
        sim.fail_workstation("wing-1", at_seconds=300.0)
        sim.recover_workstation("wing-1", at_seconds=301.0)
        sim.run(until_seconds=400.0)  # fails and recovers mid-run
        device = sim.user("u-a").device.address
        assert sim.server.location_db.current_room(device) == "wing-1"
