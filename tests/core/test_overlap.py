"""Tests for the coverage-overlap stress model."""

from __future__ import annotations

import pytest

from repro.building.layouts import linear_wing
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation


def run_overlap_sim(fraction: float, seed: int = 55):
    sim = BIPSSimulation(
        plan=linear_wing(3),
        config=BIPSConfig(seed=seed, coverage_overlap_fraction=fraction),
    )
    sim.add_user("u-a", "A")
    sim.login("u-a")
    sim.follow_route("u-a", ["wing-1", "wing-2", "wing-1"])
    sim.run(until_seconds=600.0)
    return sim


class TestOverlap:
    def test_zero_overlap_creates_no_spill_scanners(self):
        sim = run_overlap_sim(0.0)
        names = [scanner.name for scanner in sim.user("u-a").scanners]
        assert all("~" not in name for name in names)

    def test_overlap_creates_spill_sessions(self):
        sim = run_overlap_sim(0.3)
        names = [scanner.name for scanner in sim.user("u-a").scanners]
        assert any("~" in name for name in names)

    def test_overlap_triggers_invalidation_machinery(self):
        baseline = run_overlap_sim(0.0)
        stressed = run_overlap_sim(0.3)
        assert stressed.server.invalidations_sent >= baseline.server.invalidations_sent

    def test_tracking_survives_overlap(self):
        sim = run_overlap_sim(0.3)
        report = sim.tracking_report()
        # Double-claiming degrades accuracy but must not break tracking.
        assert report.users[0].accuracy > 0.4
        assert report.users[0].detection_rate > 0.5

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            BIPSConfig(coverage_overlap_fraction=0.9)
        with pytest.raises(ValueError):
            BIPSConfig(coverage_overlap_fraction=-0.1)

    def test_db_flapping_bounded(self):
        """The DB may flap while a device is double-claimed, but every
        flap is followed by a correction (last honest presence wins)."""
        sim = run_overlap_sim(0.25, seed=56)
        device = sim.user("u-a").device.address
        history = sim.server.location_db.history_of(device)
        rooms = [event.room_id for event in history if event.room_id is not None]
        true_rooms = {"wing-1", "wing-2"}
        # All claims are plausible rooms (the spill only reaches
        # neighbours of the true room).
        assert set(rooms) <= true_rooms | {"wing-0"}
