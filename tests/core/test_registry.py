"""Tests for user registration, login, and access rights."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.core.errors import (
    AccessDeniedError,
    AuthenticationError,
    NotLoggedInError,
    RegistrationError,
    UnknownUserError,
)
from repro.core.registry import UserRegistry, VisibilityPolicy

ALICE_DEV = BDAddr(0x100)
BOB_DEV = BDAddr(0x200)


@pytest.fixture
def registry() -> UserRegistry:
    reg = UserRegistry()
    reg.register("u-alice", "Alice", "pw-a")
    reg.register("u-bob", "Bob", "pw-b")
    return reg


class TestRegistration:
    def test_lookup_by_id_and_name(self, registry):
        assert registry.user("u-alice").username == "Alice"
        assert registry.user_by_name("Bob").userid == "u-bob"
        assert registry.registered_count == 2

    def test_duplicate_userid_rejected(self, registry):
        with pytest.raises(RegistrationError):
            registry.register("u-alice", "Other", "pw")

    def test_duplicate_username_rejected(self, registry):
        with pytest.raises(RegistrationError):
            registry.register("u-other", "Alice", "pw")

    def test_empty_fields_rejected(self):
        registry = UserRegistry()
        with pytest.raises(RegistrationError):
            registry.register("", "Name", "pw")
        with pytest.raises(RegistrationError):
            registry.register("id", "", "pw")

    def test_unknown_lookups_raise(self, registry):
        with pytest.raises(UnknownUserError):
            registry.user("ghost")
        with pytest.raises(UnknownUserError):
            registry.user_by_name("Ghost")

    def test_password_not_stored_in_clear(self, registry):
        record = registry.user("u-alice")
        assert "pw-a" not in record.password_hash


class TestLoginLogout:
    def test_login_binds_device(self, registry):
        session = registry.login("u-alice", "pw-a", ALICE_DEV, tick=100)
        assert session.device == ALICE_DEV
        assert registry.is_logged_in("u-alice")
        assert registry.device_of("u-alice") == ALICE_DEV
        assert registry.userid_of_device(ALICE_DEV) == "u-alice"

    def test_wrong_password_rejected(self, registry):
        with pytest.raises(AuthenticationError):
            registry.login("u-alice", "wrong", ALICE_DEV, tick=0)
        assert not registry.is_logged_in("u-alice")

    def test_unknown_userid_rejected(self, registry):
        with pytest.raises(AuthenticationError):
            registry.login("ghost", "pw", ALICE_DEV, tick=0)

    def test_device_bound_to_other_user_rejected(self, registry):
        registry.login("u-alice", "pw-a", ALICE_DEV, tick=0)
        with pytest.raises(AuthenticationError):
            registry.login("u-bob", "pw-b", ALICE_DEV, tick=5)

    def test_relogin_moves_binding_to_new_device(self, registry):
        registry.login("u-alice", "pw-a", ALICE_DEV, tick=0)
        registry.login("u-alice", "pw-a", BDAddr(0x300), tick=10)
        assert registry.device_of("u-alice") == BDAddr(0x300)
        assert registry.userid_of_device(ALICE_DEV) is None

    def test_logout_unbinds(self, registry):
        registry.login("u-alice", "pw-a", ALICE_DEV, tick=0)
        registry.logout("u-alice")
        assert not registry.is_logged_in("u-alice")
        assert registry.userid_of_device(ALICE_DEV) is None

    def test_logout_is_idempotent(self, registry):
        registry.logout("u-alice")  # never logged in: no error

    def test_device_of_requires_login(self, registry):
        with pytest.raises(NotLoggedInError):
            registry.device_of("u-alice")

    def test_active_sessions(self, registry):
        assert registry.active_sessions == 0
        registry.login("u-alice", "pw-a", ALICE_DEV, tick=0)
        assert registry.active_sessions == 1


class TestAccessRights:
    def test_everyone_policy(self, registry):
        registry.login("u-alice", "pw-a", ALICE_DEV, tick=0)
        registry.login("u-bob", "pw-b", BOB_DEV, tick=0)
        target = registry.check_query_allowed("u-bob", "Alice")
        assert target.userid == "u-alice"

    def test_nobody_policy(self):
        registry = UserRegistry()
        registry.register("u-a", "A", "pw", policy=VisibilityPolicy.NOBODY)
        registry.register("u-b", "B", "pw")
        registry.login("u-a", "pw", ALICE_DEV, tick=0)
        registry.login("u-b", "pw", BOB_DEV, tick=0)
        with pytest.raises(AccessDeniedError):
            registry.check_query_allowed("u-b", "A")

    def test_nobody_policy_allows_self(self):
        registry = UserRegistry()
        registry.register("u-a", "A", "pw", policy=VisibilityPolicy.NOBODY)
        registry.login("u-a", "pw", ALICE_DEV, tick=0)
        assert registry.check_query_allowed("u-a", "A").userid == "u-a"

    def test_listed_policy(self):
        registry = UserRegistry()
        registry.register(
            "u-a", "A", "pw",
            policy=VisibilityPolicy.LISTED, allowed_queriers={"u-b"},
        )
        registry.register("u-b", "B", "pw")
        registry.register("u-c", "C", "pw")
        for userid, device in (("u-a", BDAddr(1)), ("u-b", BDAddr(2)), ("u-c", BDAddr(3))):
            registry.login(userid, "pw", device, tick=0)
        assert registry.check_query_allowed("u-b", "A").userid == "u-a"
        with pytest.raises(AccessDeniedError):
            registry.check_query_allowed("u-c", "A")

    def test_querier_must_be_logged_in(self, registry):
        registry.login("u-alice", "pw-a", ALICE_DEV, tick=0)
        with pytest.raises(NotLoggedInError):
            registry.check_query_allowed("u-bob", "Alice")

    def test_target_must_be_logged_in(self, registry):
        registry.login("u-bob", "pw-b", BOB_DEV, tick=0)
        with pytest.raises(NotLoggedInError):
            registry.check_query_allowed("u-bob", "Alice")

    def test_unknown_target(self, registry):
        registry.login("u-bob", "pw-b", BOB_DEV, tick=0)
        with pytest.raises(UnknownUserError):
            registry.check_query_allowed("u-bob", "Ghost")
