"""Tests for the central location database."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.core.location_db import LocationDatabase

DEV = BDAddr(0x42)


@pytest.fixture
def db() -> LocationDatabase:
    return LocationDatabase()


class TestPresence:
    def test_presence_sets_room(self, db):
        assert db.apply_presence(DEV, "lab", 100, "ws:lab")
        assert db.current_room(DEV) == "lab"
        assert db.record_of(DEV).since_tick == 100

    def test_duplicate_presence_is_noop(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        assert not db.apply_presence(DEV, "lab", 200, "ws:lab")
        assert db.record_of(DEV).since_tick == 100
        assert db.updates_applied == 1

    def test_room_change(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        assert db.apply_presence(DEV, "office", 200, "ws:office")
        assert db.current_room(DEV) == "office"

    def test_absence_clears_room(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        assert db.apply_absence(DEV, "lab", 200, "ws:lab")
        assert db.current_room(DEV) is None
        assert db.record_of(DEV) is not None  # device still known

    def test_stale_absence_ignored(self, db):
        """An absence from the old room must not erase the new room."""
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        db.apply_presence(DEV, "office", 200, "ws:office")
        assert not db.apply_absence(DEV, "lab", 210, "ws:lab")
        assert db.current_room(DEV) == "office"
        assert db.stale_absences_ignored == 1

    def test_absence_for_unknown_device_ignored(self, db):
        assert not db.apply_absence(DEV, "lab", 100, "ws:lab")

    def test_counts(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        db.apply_presence(BDAddr(0x43), "office", 100, "ws:office")
        db.apply_absence(DEV, "lab", 200, "ws:lab")
        assert db.tracked_count == 2
        assert db.known_count == 1


class TestHistory:
    def test_history_records_transitions(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        db.apply_presence(DEV, "office", 200, "ws:office")
        db.apply_absence(DEV, "office", 300, "ws:office")
        rooms = [event.room_id for event in db.history_of(DEV)]
        assert rooms == ["lab", "office", None]

    def test_history_limit(self):
        db = LocationDatabase(history_limit=3)
        for i in range(10):
            db.apply_presence(DEV, f"room-{i}", i * 100, "ws")
        history = db.history_of(DEV)
        assert len(history) == 3
        assert history[-1].room_id == "room-9"

    def test_room_at_replays_history(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        db.apply_presence(DEV, "office", 200, "ws:office")
        db.apply_absence(DEV, "office", 300, "ws:office")
        assert db.room_at(DEV, 50) is None
        assert db.room_at(DEV, 100) == "lab"
        assert db.room_at(DEV, 250) == "office"
        assert db.room_at(DEV, 400) is None

    def test_room_at_unknown_device(self, db):
        assert db.room_at(DEV, 100) is None

    def test_invalid_history_limit(self):
        with pytest.raises(ValueError):
            LocationDatabase(history_limit=0)


class TestQueries:
    def test_occupants_of(self, db):
        db.apply_presence(BDAddr(1), "lab", 100, "ws")
        db.apply_presence(BDAddr(2), "lab", 100, "ws")
        db.apply_presence(BDAddr(3), "office", 100, "ws")
        assert sorted(a.value for a in db.occupants_of("lab")) == [1, 2]

    def test_forget_device(self, db):
        db.apply_presence(DEV, "lab", 100, "ws")
        db.forget_device(DEV)
        assert db.current_room(DEV) is None
        assert db.history_of(DEV) == []
        assert db.tracked_count == 0

    def test_never_seen_device(self, db):
        assert db.current_room(DEV) is None
        assert db.record_of(DEV) is None
