"""Tests for the central location database."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.core.location_db import LocationDatabase

DEV = BDAddr(0x42)


@pytest.fixture
def db() -> LocationDatabase:
    return LocationDatabase()


class TestPresence:
    def test_presence_sets_room(self, db):
        assert db.apply_presence(DEV, "lab", 100, "ws:lab")
        assert db.current_room(DEV) == "lab"
        assert db.record_of(DEV).since_tick == 100

    def test_duplicate_presence_is_noop(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        assert not db.apply_presence(DEV, "lab", 200, "ws:lab")
        assert db.record_of(DEV).since_tick == 100
        assert db.updates_applied == 1

    def test_room_change(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        assert db.apply_presence(DEV, "office", 200, "ws:office")
        assert db.current_room(DEV) == "office"

    def test_absence_clears_room(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        assert db.apply_absence(DEV, "lab", 200, "ws:lab")
        assert db.current_room(DEV) is None
        assert db.record_of(DEV) is not None  # device still known

    def test_stale_absence_ignored(self, db):
        """An absence from the old room must not erase the new room."""
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        db.apply_presence(DEV, "office", 200, "ws:office")
        assert not db.apply_absence(DEV, "lab", 210, "ws:lab")
        assert db.current_room(DEV) == "office"
        assert db.stale_absences_ignored == 1

    def test_absence_for_unknown_device_ignored(self, db):
        assert not db.apply_absence(DEV, "lab", 100, "ws:lab")

    def test_counts(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        db.apply_presence(BDAddr(0x43), "office", 100, "ws:office")
        db.apply_absence(DEV, "lab", 200, "ws:lab")
        assert db.tracked_count == 2
        assert db.known_count == 1


class TestHistory:
    def test_history_records_transitions(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        db.apply_presence(DEV, "office", 200, "ws:office")
        db.apply_absence(DEV, "office", 300, "ws:office")
        rooms = [event.room_id for event in db.history_of(DEV)]
        assert rooms == ["lab", "office", None]

    def test_history_limit(self):
        db = LocationDatabase(history_limit=3)
        for i in range(10):
            db.apply_presence(DEV, f"room-{i}", i * 100, "ws")
        history = db.history_of(DEV)
        assert len(history) == 3
        assert history[-1].room_id == "room-9"

    def test_room_at_replays_history(self, db):
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        db.apply_presence(DEV, "office", 200, "ws:office")
        db.apply_absence(DEV, "office", 300, "ws:office")
        assert db.room_at(DEV, 50) is None
        assert db.room_at(DEV, 100) == "lab"
        assert db.room_at(DEV, 250) == "office"
        assert db.room_at(DEV, 400) is None

    def test_room_at_unknown_device(self, db):
        assert db.room_at(DEV, 100) is None

    def test_invalid_history_limit(self):
        with pytest.raises(ValueError):
            LocationDatabase(history_limit=0)


class TestOutOfOrderDelivery:
    """Regression: delayed LAN deliveries must not corrupt the database.

    Workstations report deltas over the LAN and deliveries can race and
    reorder.  Before the tick guards, a delayed presence overwrote
    fresher state with stale state, and a delayed absence for the
    *current* room erased a newer attribution; history also appended at
    the tail regardless of tick, breaking ``room_at`` replay.
    """

    def test_stale_presence_does_not_overwrite_fresh_room(self, db):
        db.apply_presence(DEV, "office", 200, "ws:office")
        assert not db.apply_presence(DEV, "lab", 150, "ws:lab")
        assert db.current_room(DEV) == "office"
        assert db.record_of(DEV).since_tick == 200
        assert db.stale_presences_ignored == 1

    def test_stale_presence_leaves_history_untouched(self, db):
        db.apply_presence(DEV, "office", 200, "ws:office")
        db.apply_presence(DEV, "lab", 150, "ws:lab")
        assert [e.room_id for e in db.history_of(DEV)] == ["office"]

    def test_delayed_absence_same_room_ignored(self, db):
        # Device re-entered the lab at 300; an absence stamped 250
        # (from its earlier exit) arrives late.
        db.apply_presence(DEV, "lab", 300, "ws:lab")
        assert not db.apply_absence(DEV, "lab", 250, "ws:lab")
        assert db.current_room(DEV) == "lab"
        assert db.stale_absences_ignored == 1

    def test_equal_tick_updates_still_apply(self, db):
        # The guard is strictly "older than": a same-tick transition
        # (presence then absence in one tick) is legal.
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        assert db.apply_absence(DEV, "lab", 100, "ws:lab")
        assert db.current_room(DEV) is None

    def test_history_insertion_keeps_tick_order(self, db):
        # A presence for a room the device was *not* in survives the
        # staleness guard only if its tick is fresh — but two different
        # devices' workstations can interleave; simulate a survivor
        # landing between recorded ticks via absence after re-presence.
        db.apply_presence(DEV, "lab", 100, "ws:lab")
        db.apply_presence(DEV, "office", 300, "ws:office")
        db.apply_presence(DEV, "lounge", 400, "ws:lounge")
        ticks = [e.tick for e in db.history_of(DEV)]
        assert ticks == sorted(ticks)

    def test_room_at_consistent_after_reordered_stream(self, db):
        events = [
            ("presence", "lab", 100),
            ("presence", "office", 300),
            ("absence", "office", 400),
        ]
        replayed = LocationDatabase()
        for kind, room, tick in events:
            if kind == "presence":
                replayed.apply_presence(DEV, room, tick, "ws")
            else:
                replayed.apply_absence(DEV, room, tick, "ws")
        # Deliver the same stream with the first two swapped; the
        # guards must converge on the same final attribution.
        db.apply_presence(DEV, "office", 300, "ws")
        db.apply_presence(DEV, "lab", 100, "ws")
        db.apply_absence(DEV, "office", 400, "ws")
        assert db.current_room(DEV) == replayed.current_room(DEV)
        assert db.room_at(DEV, 500) == replayed.room_at(DEV, 500)

    def test_rejection_counters_do_not_count_applied_updates(self, db):
        db.apply_presence(DEV, "lab", 100, "ws")
        db.apply_presence(DEV, "office", 200, "ws")
        db.apply_absence(DEV, "office", 300, "ws")
        assert db.stale_presences_ignored == 0
        assert db.stale_absences_ignored == 0
        assert db.updates_applied == 3


class TestQueries:
    def test_occupants_of(self, db):
        db.apply_presence(BDAddr(1), "lab", 100, "ws")
        db.apply_presence(BDAddr(2), "lab", 100, "ws")
        db.apply_presence(BDAddr(3), "office", 100, "ws")
        assert sorted(a.value for a in db.occupants_of("lab")) == [1, 2]

    def test_forget_device(self, db):
        db.apply_presence(DEV, "lab", 100, "ws")
        db.forget_device(DEV)
        assert db.current_room(DEV) is None
        assert db.history_of(DEV) == []
        assert db.tracked_count == 0

    def test_never_seen_device(self, db):
        assert db.current_room(DEV) is None
        assert db.record_of(DEV) is None
