"""Regression tests for cross-workstation presence invalidation.

The delta-reporting design of §2 has a consistency hole: a device that
leaves a room too briefly for the absence hysteresis to fire, and later
returns, is still "present" in the old workstation's tracker, so no new
delta is ever sent after the central database re-attributed and then
cleared the device.  The server closes the hole by invalidating the
previous room's tracker on every location change.
"""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.bluetooth.device import BluetoothDevice
from repro.bluetooth.packets import FHSPacket
from repro.building.layouts import two_room_testbed
from repro.core.scheduler import MasterSchedulingPolicy
from repro.core.server import BIPSServer
from repro.core.workstation import Workstation
from repro.lan.transport import LANTransport
from repro.sim.clock import ticks_from_seconds

DEV = BDAddr(0x99)


@pytest.fixture
def deployment(kernel):
    lan = LANTransport(kernel)
    server = BIPSServer(kernel, lan, two_room_testbed())
    policy = MasterSchedulingPolicy()
    workstations = {}
    for index, room in enumerate(("room-a", "room-b")):
        workstations[room] = Workstation(
            kernel=kernel,
            workstation_id=f"ws:{room}",
            room_id=room,
            device=BluetoothDevice(address=BDAddr(0xF0 + index)),
            policy=policy,
            lan=lan,
            miss_threshold=2,
        )
    horizon = ticks_from_seconds(300)
    for workstation in workstations.values():
        workstation.start(horizon)
    return kernel, server, workstations


def see(workstation, tick):
    workstation.inquiry._on_fhs(
        FHSPacket(sender=DEV, clkn=0, channel=0, tx_tick=tick), tick
    )


class TestInvalidation:
    def test_bounce_and_return_is_reattributed(self, deployment):
        """A -> B -> A faster than the absence hysteresis still tracks."""
        kernel, server, workstations = deployment
        cycle = ticks_from_seconds(15.4)
        ws_a, ws_b = workstations["room-a"], workstations["room-b"]

        # Window 1: device in room A.
        see(ws_a, 100)
        kernel.run_until(cycle)
        assert server.location_db.current_room(DEV) == "room-a"

        # Window 2: device pops into room B (room A misses once only).
        see(ws_b, cycle + 100)
        kernel.run_until(2 * cycle)
        assert server.location_db.current_room(DEV) == "room-b"
        # The server invalidated room A's tracker.
        assert server.invalidations_sent == 1
        kernel.run_until(2 * cycle + 100)
        assert ws_a.invalidations_received == 1
        assert DEV not in ws_a.tracker.present_devices

        # Windows 3..5: device is back in room A (and stays there) ->
        # a *fresh* presence delta re-attributes it.
        for window_index in (2, 3, 4, 5):
            see(ws_a, window_index * cycle + 200)
            kernel.run_until((window_index + 1) * cycle + 100)
        assert server.location_db.current_room(DEV) == "room-a"

        # The return to room A invalidated room B's tracker, so room B
        # never even needed to send an absence delta for the device.
        assert ws_b.invalidations_received == 1
        assert DEV not in ws_b.tracker.present_devices
        assert server.invalidations_sent == 2

    def test_no_invalidation_on_first_sighting(self, deployment):
        kernel, server, workstations = deployment
        see(workstations["room-a"], 100)
        kernel.run_until(ticks_from_seconds(15.4))
        assert server.invalidations_sent == 0

    def test_no_invalidation_on_same_room_refresh(self, deployment):
        kernel, server, workstations = deployment
        cycle = ticks_from_seconds(15.4)
        see(workstations["room-a"], 100)
        kernel.run_until(cycle)
        see(workstations["room-a"], cycle + 100)
        kernel.run_until(2 * cycle)
        assert server.invalidations_sent == 0
