"""Integration of the DM1 link scheduler into the workstation duty cycle."""

from __future__ import annotations

import pytest

from repro.building.layouts import two_room_testbed
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation


def serving_sim(push_bytes: int = 500, seed: int = 91) -> BIPSSimulation:
    sim = BIPSSimulation(
        plan=two_room_testbed(),
        config=BIPSConfig(
            seed=seed, enroll_users=True, push_navigation_bytes=push_bytes
        ),
    )
    sim.add_user("u-a", "A")
    sim.login("u-a")
    sim.follow_route("u-a", ["room-a"])
    return sim


class TestServingIntegration:
    def test_connected_slave_receives_pushes(self):
        sim = serving_sim()
        sim.run(until_seconds=120.0)
        workstation = sim.workstations["room-a"]
        delivered = workstation.link.delivered_messages()
        # Enrolled within the first cycles; pushed once per cycle after.
        assert len(delivered) >= 3
        assert all(m.payload_bytes == 500 for m in delivered)
        # A 500 B message to a lone slave takes ~37 ms of DM1 rounds.
        assert all(m.latency_seconds < 0.1 for m in delivered)

    def test_no_push_without_payload_config(self):
        sim = serving_sim(push_bytes=0)
        sim.run(until_seconds=120.0)
        assert sim.workstations["room-a"].link.delivered_messages() == []

    def test_departed_slave_leaves_the_wheel(self):
        sim = BIPSSimulation(
            plan=two_room_testbed(),
            config=BIPSConfig(seed=92, enroll_users=True, push_navigation_bytes=100),
        )
        sim.add_user("u-a", "A")
        sim.login("u-a")
        sim.follow_route("u-a", ["room-a", "room-b"])
        sim.run(until_seconds=500.0)
        ws_a = sim.workstations["room-a"]
        # The user moved on; after the absence, room-a's wheel empties.
        assert ws_a.link.slave_count == 0
        # But it did serve pushes while the user was connected there.
        assert len(ws_a.link.delivered_messages()) >= 1

    def test_push_config_validation(self):
        with pytest.raises(ValueError):
            BIPSConfig(push_navigation_bytes=-1)
