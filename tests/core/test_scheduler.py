"""Tests for the §5 master scheduling policy."""

from __future__ import annotations

import math

import pytest

from repro.bluetooth.constants import TICKS_PER_TRAIN_DWELL
from repro.bluetooth.hopping import Train, TrainStrategy
from repro.core.scheduler import MasterSchedulingPolicy


class TestDefaults:
    def test_paper_numbers(self):
        policy = MasterSchedulingPolicy()
        assert policy.inquiry_window_seconds == 3.84
        assert policy.operational_cycle_seconds == 15.4
        assert math.isclose(policy.serving_window_seconds, 11.56)
        assert 0.24 <= policy.tracking_load <= 0.25

    def test_window_is_one_and_a_half_dwells(self):
        policy = MasterSchedulingPolicy()
        assert policy.inquiry_window_ticks == TICKS_PER_TRAIN_DWELL * 3 // 2

    def test_covers_full_dwell(self):
        assert MasterSchedulingPolicy().covers_full_dwell()
        short = MasterSchedulingPolicy(inquiry_window_seconds=1.0)
        assert not short.covers_full_dwell()

    def test_describe_mentions_load(self):
        text = MasterSchedulingPolicy().describe()
        assert "3.84" in text and "%" in text


class TestDerivation:
    def test_from_building_parameters_matches_paper(self):
        policy = MasterSchedulingPolicy.from_building_parameters()
        assert math.isclose(policy.operational_cycle_seconds, 20.0 / 1.3)
        assert round(policy.operational_cycle_seconds, 1) == 15.4

    def test_smaller_rooms_shorter_cycle(self):
        policy = MasterSchedulingPolicy.from_building_parameters(
            coverage_diameter_m=10.0, inquiry_window_seconds=2.56
        )
        assert policy.operational_cycle_seconds < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MasterSchedulingPolicy(inquiry_window_seconds=0.0)
        with pytest.raises(ValueError):
            MasterSchedulingPolicy(
                inquiry_window_seconds=20.0, operational_cycle_seconds=15.0
            )


class TestScheduleMaterialisation:
    def test_periodic_structure(self):
        policy = MasterSchedulingPolicy()
        schedule = policy.build_schedule()
        assert schedule.windows.window_ticks == policy.inquiry_window_ticks
        assert schedule.windows.period_ticks == policy.operational_cycle_ticks
        assert schedule.is_listening(0)
        assert not schedule.is_listening(policy.inquiry_window_ticks + 1)
        assert schedule.is_listening(policy.operational_cycle_ticks + 5)

    def test_stagger_offset(self):
        schedule = MasterSchedulingPolicy().build_schedule(start_tick=1000)
        assert not schedule.is_listening(500)
        assert schedule.is_listening(1000)

    def test_strategy_and_train_propagate(self):
        policy = MasterSchedulingPolicy(
            train_strategy=TrainStrategy.A_ONLY, start_train=Train.B
        )
        schedule = policy.build_schedule()
        assert schedule.strategy is TrainStrategy.A_ONLY
