"""Integration tests for the end-to-end BIPS simulation facade."""

from __future__ import annotations

import pytest

from repro.building.layouts import linear_wing, two_room_testbed
from repro.core.config import BIPSConfig
from repro.core.errors import AccessDeniedError
from repro.core.registry import VisibilityPolicy
from repro.core.simulation import BIPSSimulation
from repro.lan.messages import LocationResponse, PathResponse


def small_sim(seed: int = 1, **config_overrides) -> BIPSSimulation:
    return BIPSSimulation(
        plan=linear_wing(3), config=BIPSConfig(seed=seed, **config_overrides)
    )


class TestSetup:
    def test_one_workstation_per_room(self):
        sim = small_sim()
        assert set(sim.workstations) == {"wing-0", "wing-1", "wing-2"}

    def test_server_knows_workstations_after_start(self):
        sim = small_sim()
        sim.run(until_seconds=1.0)
        assert sim.server.workstation_count == 3

    def test_duplicate_user_rejected(self):
        sim = small_sim()
        sim.add_user("u-a", "A")
        with pytest.raises(ValueError):
            sim.add_user("u-a", "A2")

    def test_user_devices_are_unique(self):
        sim = small_sim()
        a = sim.add_user("u-a", "A")
        b = sim.add_user("u-b", "B")
        assert a.device.address != b.device.address

    def test_double_walk_rejected(self):
        sim = small_sim()
        sim.add_user("u-a", "A")
        sim.walk("u-a", "wing-0", hops=1)
        with pytest.raises(ValueError):
            sim.walk("u-a", "wing-0", hops=1)


class TestTracking:
    def test_stationary_user_is_found(self):
        sim = small_sim()
        sim.add_user("u-a", "A")
        sim.add_user("u-b", "B")
        sim.login("u-a")
        sim.login("u-b")
        sim.follow_route("u-a", ["wing-1"])
        sim.run(until_seconds=60.0)
        assert sim.server.locate("u-b", "A") == "wing-1"

    def test_moving_user_tracked_across_rooms(self):
        sim = small_sim(seed=3)
        sim.add_user("u-a", "A")
        sim.login("u-a")
        timeline = sim.follow_route("u-a", ["wing-0", "wing-1", "wing-2"])
        sim.run(until_seconds=600.0)
        history = sim.server.location_db.history_of(sim.user("u-a").device.address)
        rooms_seen = [e.room_id for e in history if e.room_id is not None]
        # The database must have seen the user in every room of the route
        # in order.
        filtered = [r for i, r in enumerate(rooms_seen) if i == 0 or rooms_seen[i - 1] != r]
        assert filtered == ["wing-0", "wing-1", "wing-2"]

    def test_tracking_report_quality(self):
        sim = small_sim(seed=5)
        sim.add_user("u-a", "A")
        sim.login("u-a")
        sim.walk("u-a", "wing-0", hops=3)
        sim.run(until_seconds=600.0)
        report = sim.tracking_report()
        assert len(report.users) == 1
        user_report = report.users[0]
        assert user_report.accuracy > 0.6
        assert user_report.detection_rate > 0.6
        # Detection latency is bounded by roughly one operational cycle
        # plus scheduling stagger.
        assert user_report.mean_detection_latency_seconds < 2 * 15.4

    def test_logout_stops_tracking(self):
        sim = small_sim()
        sim.add_user("u-a", "A")
        sim.add_user("u-b", "B")
        sim.login("u-a")
        sim.login("u-b")
        sim.follow_route("u-a", ["wing-1"])
        sim.run(until_seconds=60.0)
        sim.logout("u-a")
        with pytest.raises(Exception):
            sim.server.locate("u-b", "A")  # target no longer logged in


class TestAccessControl:
    def test_visibility_policy_enforced_end_to_end(self):
        sim = small_sim()
        sim.add_user("u-a", "A", policy=VisibilityPolicy.NOBODY)
        sim.add_user("u-b", "B")
        sim.login("u-a")
        sim.login("u-b")
        sim.follow_route("u-a", ["wing-1"])
        sim.run(until_seconds=60.0)
        with pytest.raises(AccessDeniedError):
            sim.server.locate("u-b", "A")


class TestLANQueries:
    def test_location_query_over_lan(self):
        sim = small_sim()
        sim.add_user("u-a", "A")
        sim.add_user("u-b", "B")
        sim.login("u-a")
        sim.login("u-b")
        sim.follow_route("u-a", ["wing-2"])
        sim.run(until_seconds=60.0)
        query_id = sim.query_location_via_lan("u-b", "A")
        sim.run(until_seconds=61.0)
        responses = [m for m in sim.user("u-b").inbox if isinstance(m, LocationResponse)]
        assert len(responses) == 1
        assert responses[0].query_id == query_id
        assert responses[0].ok and responses[0].room_id == "wing-2"

    def test_path_query_over_lan(self):
        sim = small_sim()
        sim.add_user("u-a", "A")
        sim.add_user("u-b", "B")
        sim.login("u-a")
        sim.login("u-b")
        sim.follow_route("u-a", ["wing-2"])
        sim.follow_route("u-b", ["wing-0"])
        sim.run(until_seconds=60.0)
        sim.query_path_via_lan("u-b", "A")
        sim.run(until_seconds=61.0)
        responses = [m for m in sim.user("u-b").inbox if isinstance(m, PathResponse)]
        assert len(responses) == 1
        assert responses[0].ok
        assert responses[0].rooms == ("wing-0", "wing-1", "wing-2")
        assert responses[0].total_distance_m == 20.0


class TestTwoRoomScenario:
    def test_room_handoff_updates_database(self):
        sim = BIPSSimulation(plan=two_room_testbed(), config=BIPSConfig(seed=9))
        sim.add_user("u-a", "A")
        sim.add_user("u-b", "B")
        sim.login("u-a")
        sim.login("u-b")
        sim.follow_route("u-a", ["room-a", "room-b"])
        sim.run(until_seconds=400.0)
        assert sim.server.locate("u-b", "A") == "room-b"

    def test_lan_loss_degrades_but_not_fatally(self):
        sim = BIPSSimulation(
            plan=two_room_testbed(),
            config=BIPSConfig(seed=10, lan_loss_probability=0.3),
        )
        sim.add_user("u-a", "A")
        sim.login("u-a")
        sim.follow_route("u-a", ["room-a"])
        sim.run(until_seconds=300.0)
        # With 30% loss, the single presence update may be dropped, but
        # the LAN statistics must reflect it.
        assert sim.lan.stats.sent > 0
