"""Tests for Dijkstra and the all-pairs precomputation."""

from __future__ import annotations

import itertools

import pytest

from repro.building.layouts import academic_department, linear_wing
from repro.core.errors import UnknownRoomError
from repro.core.pathfinding import (
    AllPairsPaths,
    Graph,
    validate_against_reference,
)


def diamond() -> Graph:
    """a-b-d is 3, a-c-d is 2.5: the cheaper path has more hops."""
    graph = Graph()
    for node in "abcd":
        graph.add_node(node)
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("b", "d", 2.0)
    graph.add_edge("a", "c", 1.5)
    graph.add_edge("c", "d", 1.0)
    return graph


class TestGraph:
    def test_add_edge_requires_nodes(self):
        graph = Graph()
        graph.add_node("a")
        with pytest.raises(UnknownRoomError):
            graph.add_edge("a", "ghost", 1.0)

    def test_self_loop_rejected(self):
        graph = Graph()
        graph.add_node("a")
        with pytest.raises(ValueError):
            graph.add_edge("a", "a", 1.0)

    def test_non_positive_weight_rejected(self):
        graph = diamond()
        with pytest.raises(ValueError):
            graph.add_edge("a", "d", 0.0)

    def test_undirected(self):
        graph = diamond()
        assert graph.neighbors("a")["b"] == 1.0
        assert graph.neighbors("b")["a"] == 1.0

    def test_from_floorplan(self):
        plan = academic_department()
        graph = Graph.from_floorplan(plan)
        assert set(graph.nodes) == set(plan.room_ids())


class TestDijkstra:
    def test_picks_cheaper_longer_path(self):
        result = diamond().shortest_path("a", "d")
        assert result.rooms == ("a", "c", "d")
        assert result.total_distance_m == 2.5
        assert result.hop_count == 2

    def test_source_equals_target(self):
        result = diamond().shortest_path("a", "a")
        assert result.rooms == ("a",)
        assert result.total_distance_m == 0.0
        assert result.hop_count == 0

    def test_disconnected_returns_none(self):
        graph = diamond()
        graph.add_node("island")
        assert graph.shortest_path("a", "island") is None

    def test_unknown_nodes_raise(self):
        with pytest.raises(UnknownRoomError):
            diamond().shortest_path("ghost", "a")
        with pytest.raises(UnknownRoomError):
            diamond().shortest_path("a", "ghost")

    def test_distances_monotone_along_path(self):
        graph = Graph.from_floorplan(academic_department())
        distance, predecessor = graph.dijkstra("lab-1")
        for node, pred in predecessor.items():
            if pred is not None:
                assert distance[pred] < distance[node]

    def test_linear_wing_distance(self):
        graph = Graph.from_floorplan(linear_wing(6))
        result = graph.shortest_path("wing-0", "wing-5")
        assert result.total_distance_m == 50.0
        assert result.hop_count == 5

    def test_matches_networkx_on_department(self):
        graph = Graph.from_floorplan(academic_department())
        pairs = list(itertools.combinations(graph.nodes, 2))
        assert validate_against_reference(graph, pairs) == []

    def test_matches_networkx_on_random_graphs(self):
        from repro.sim.rng import RandomStream

        rng = RandomStream(12345, "graphs")
        for trial in range(10):
            graph = Graph()
            node_count = rng.randint(4, 12)
            nodes = [f"n{i}" for i in range(node_count)]
            for node in nodes:
                graph.add_node(node)
            # A random spanning tree plus extra chords keeps it connected.
            for i in range(1, node_count):
                parent = nodes[rng.randint(0, i - 1)]
                graph.add_edge(nodes[i], parent, rng.uniform(0.5, 20.0))
            for _ in range(node_count):
                a, b = rng.sample(nodes, 2)
                if b not in graph.neighbors(a):
                    graph.add_edge(a, b, rng.uniform(0.5, 20.0))
            pairs = [tuple(rng.sample(nodes, 2)) for _ in range(15)]
            assert validate_against_reference(graph, pairs) == []


class TestAllPairs:
    def test_lookup_matches_direct_dijkstra(self):
        plan = academic_department()
        graph = Graph.from_floorplan(plan)
        all_pairs = AllPairsPaths(graph)
        for source, target in itertools.combinations(plan.room_ids(), 2):
            direct = graph.shortest_path(source, target)
            lookup = all_pairs.path(source, target)
            assert lookup.total_distance_m == direct.total_distance_m
            assert lookup.rooms == direct.rooms

    def test_path_is_symmetric_in_length(self):
        all_pairs = AllPairsPaths.from_floorplan(academic_department())
        a = all_pairs.distance("lab-1", "lounge")
        b = all_pairs.distance("lounge", "lab-1")
        assert a == b

    def test_unreachable_distance_none(self):
        graph = diamond()
        graph.add_node("island")
        all_pairs = AllPairsPaths(graph)
        assert all_pairs.distance("a", "island") is None
        assert all_pairs.path("a", "island") is None

    def test_unknown_room_raises(self):
        all_pairs = AllPairsPaths.from_floorplan(academic_department())
        with pytest.raises(UnknownRoomError):
            all_pairs.path("ghost", "lab-1")
        with pytest.raises(UnknownRoomError):
            all_pairs.path("lab-1", "ghost")

    def test_diameter_and_eccentricity(self):
        all_pairs = AllPairsPaths.from_floorplan(linear_wing(6))
        assert all_pairs.diameter() == 50.0
        assert all_pairs.eccentricity("wing-0") == 50.0
        assert all_pairs.eccentricity("wing-3") == 30.0

    def test_path_describe(self):
        all_pairs = AllPairsPaths.from_floorplan(linear_wing(3))
        text = all_pairs.path("wing-0", "wing-2").describe()
        assert "wing-0 -> wing-1 -> wing-2" in text
        assert "20.0 m" in text


class TestDiameterEdgeCases:
    """Defined behaviour for degenerate graphs (empty / disconnected).

    ``diameter()`` used to raise ``max()``'s bare "empty sequence"
    ValueError on an empty graph and to *omit* unreachable nodes from
    eccentricity, silently reporting a finite diameter for a building
    whose graph was wired without a connecting passage.
    """

    def test_empty_graph_diameter_raises_with_message(self):
        all_pairs = AllPairsPaths(Graph())
        with pytest.raises(ValueError, match="empty graph"):
            all_pairs.diameter()

    def test_single_node_graph(self):
        graph = Graph()
        graph.add_node("lobby")
        all_pairs = AllPairsPaths(graph)
        assert all_pairs.diameter() == 0.0
        assert all_pairs.eccentricity("lobby") == 0.0

    def test_disconnected_eccentricity_is_infinite(self):
        import math

        graph = diamond()
        graph.add_node("island")
        all_pairs = AllPairsPaths(graph)
        assert all_pairs.eccentricity("a") == math.inf
        assert all_pairs.eccentricity("island") == math.inf

    def test_disconnected_diameter_is_infinite(self):
        import math

        graph = diamond()
        graph.add_node("island")
        assert AllPairsPaths(graph).diameter() == math.inf

    def test_connected_component_unaffected(self):
        # Adding then *connecting* the island restores finite values.
        graph = diamond()
        graph.add_node("island")
        graph.add_edge("d", "island", 1.0)
        all_pairs = AllPairsPaths(graph)
        assert all_pairs.diameter() == 3.5  # a-c-d-island
        assert all_pairs.eccentricity("island") == 3.5

    def test_eccentricity_unknown_node_raises(self):
        with pytest.raises(UnknownRoomError):
            AllPairsPaths(diamond()).eccentricity("ghost")
