"""Tests for §2 enrolment: discovery → page → piconet membership."""

from __future__ import annotations

import pytest

from repro.bluetooth.constants import MAX_ACTIVE_SLAVES
from repro.building.layouts import linear_wing, two_room_testbed
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation


def enrolling_sim(plan=None, seed=21, **overrides):
    return BIPSSimulation(
        plan=plan if plan is not None else two_room_testbed(),
        config=BIPSConfig(seed=seed, enroll_users=True, **overrides),
    )


class TestEnrollment:
    def test_present_user_gets_connected(self):
        sim = enrolling_sim()
        sim.add_user("u-a", "A")
        sim.login("u-a")
        sim.follow_route("u-a", ["room-a"])
        sim.run(until_seconds=120.0)
        workstation = sim.workstations["room-a"]
        assert workstation.enrolled == 1
        connection = workstation.piconet.connection_of(sim.user("u-a").device.address)
        assert connection is not None and connection.active
        # The serving phase keeps exchanging with the slave.
        assert connection.packets_exchanged >= 1

    def test_departure_detaches(self):
        sim = enrolling_sim(plan=linear_wing(3))
        sim.add_user("u-a", "A")
        sim.login("u-a")
        sim.follow_route("u-a", ["wing-0", "wing-1"])
        sim.run(until_seconds=600.0)
        device = sim.user("u-a").device.address
        assert sim.workstations["wing-0"].piconet.connection_of(device) is None
        assert sim.workstations["wing-1"].piconet.connection_of(device) is not None
        # The closed wing-0 link is in its piconet history.
        history = sim.workstations["wing-0"].piconet.history
        assert any(conn.slave == device for conn in history)

    def test_piconet_capacity_limits_enrolment(self):
        """More than seven users in one room exceed the AM_ADDR space."""
        sim = enrolling_sim()
        user_count = 10
        for index in range(user_count):
            userid = f"u-{index}"
            sim.add_user(userid, f"U{index}")
            sim.login(userid)
            sim.follow_route(userid, ["room-a"])
        sim.run(until_seconds=200.0)
        workstation = sim.workstations["room-a"]
        assert workstation.piconet.active_count == MAX_ACTIVE_SLAVES
        assert workstation.enrolled == MAX_ACTIVE_SLAVES
        assert workstation.enroll_rejected_full >= user_count - MAX_ACTIVE_SLAVES
        # Tracking still covers everyone: presence is inquiry-based.
        present = workstation.tracker.present_devices
        assert len(present) == user_count

    def test_enrolment_off_by_default(self):
        sim = BIPSSimulation(plan=two_room_testbed(), config=BIPSConfig(seed=21))
        sim.add_user("u-a", "A")
        sim.login("u-a")
        sim.follow_route("u-a", ["room-a"])
        sim.run(until_seconds=120.0)
        assert sim.workstations["room-a"].enrolled == 0
        assert sim.workstations["room-a"].piconet.active_count == 0

    def test_unknown_devices_not_paged(self, kernel):
        """A directory miss (unregistered device) skips enrolment."""
        sim = enrolling_sim()
        sim.add_user("u-a", "A")
        sim.login("u-a")
        sim.follow_route("u-a", ["room-a"])
        # Sabotage the directory.
        sim._devices_by_address.clear()
        sim.run(until_seconds=120.0)
        assert sim.workstations["room-a"].enrolled == 0

    def test_failure_drops_piconet(self):
        sim = enrolling_sim()
        sim.add_user("u-a", "A")
        sim.login("u-a")
        sim.follow_route("u-a", ["room-a"])
        sim.run(until_seconds=120.0)
        workstation = sim.workstations["room-a"]
        assert workstation.piconet.active_count == 1
        workstation.set_failed(True)
        assert workstation.piconet.active_count == 0
