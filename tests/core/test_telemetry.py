"""Tests for workstation/system telemetry snapshots."""

from __future__ import annotations

from repro.building.layouts import two_room_testbed
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation


class TestSnapshots:
    def test_snapshot_reflects_state(self):
        sim = BIPSSimulation(
            plan=two_room_testbed(),
            config=BIPSConfig(seed=15, enroll_users=True),
        )
        sim.add_user("u-a", "A")
        sim.login("u-a")
        sim.follow_route("u-a", ["room-a"])
        sim.run(until_seconds=120.0)
        snapshots = {snap.room_id: snap for snap in sim.system_snapshot()}
        assert set(snapshots) == {"room-a", "room-b"}
        busy = snapshots["room-a"]
        idle = snapshots["room-b"]
        assert busy.present_count == 1
        assert busy.piconet_active == 1
        assert busy.enrolled == 1
        assert busy.updates_sent >= 1
        assert busy.responses_received > 0
        assert idle.present_count == 0
        assert idle.updates_sent == 0
        assert not busy.failed and not idle.failed

    def test_snapshot_shows_failure(self):
        sim = BIPSSimulation(plan=two_room_testbed(), config=BIPSConfig(seed=15))
        sim.fail_workstation("room-b")
        snapshots = {snap.room_id: snap for snap in sim.system_snapshot()}
        assert snapshots["room-b"].failed
        assert not snapshots["room-a"].failed

    def test_windows_evaluated_counts(self):
        sim = BIPSSimulation(plan=two_room_testbed(), config=BIPSConfig(seed=15))
        sim.run(until_seconds=100.0)
        for snap in sim.system_snapshot():
            # 100 s of 15.4 s cycles -> six completed windows, +-1 for
            # the stagger offset.
            assert 5 <= snap.windows_evaluated <= 7
