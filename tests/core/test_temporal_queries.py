"""Tests for historical (spatio-temporal) queries and LAN login."""

from __future__ import annotations

import pytest

from repro.building.layouts import linear_wing
from repro.core.config import BIPSConfig
from repro.core.errors import AccessDeniedError
from repro.core.registry import VisibilityPolicy
from repro.core.simulation import BIPSSimulation
from repro.lan.messages import LoginResponse
from repro.sim.clock import seconds_from_ticks


@pytest.fixture(scope="module")
def tracked_sim():
    sim = BIPSSimulation(plan=linear_wing(3), config=BIPSConfig(seed=61))
    sim.add_user("u-a", "A")
    sim.add_user("u-b", "B")
    sim.add_user("u-hidden", "Hidden", policy=VisibilityPolicy.NOBODY)
    sim.login("u-a")
    sim.login("u-b")
    sim.login("u-hidden")
    sim.follow_route("u-a", ["wing-0", "wing-1", "wing-2"])
    sim.run(until_seconds=600.0)
    return sim


class TestTemporalQueries:
    def test_history_replays_movement(self, tracked_sim):
        sim = tracked_sim
        device = sim.user("u-a").device.address
        history = sim.server.location_db.history_of(device)
        first_wing1 = next(e for e in history if e.room_id == "wing-1")
        t = seconds_from_ticks(first_wing1.tick) + 1.0
        assert sim.server.locate_at_seconds("u-b", "A", t) == "wing-1"

    def test_before_first_sighting_is_unknown(self, tracked_sim):
        assert tracked_sim.server.locate_at_seconds("u-b", "A", 0.0) is None

    def test_current_matches_locate(self, tracked_sim):
        sim = tracked_sim
        now_seconds = sim.kernel.now_seconds
        assert (
            sim.server.locate_at_seconds("u-b", "A", now_seconds)
            == sim.server.locate("u-b", "A")
        )

    def test_access_control_applies_to_history(self, tracked_sim):
        with pytest.raises(AccessDeniedError):
            tracked_sim.server.locate_at_seconds("u-b", "Hidden", 100.0)

    def test_stats_counted(self, tracked_sim):
        before = tracked_sim.server.queries.stats.location_queries
        tracked_sim.server.locate_at_seconds("u-b", "A", 50.0)
        assert tracked_sim.server.queries.stats.location_queries == before + 1


class TestLanLogin:
    def test_login_roundtrip_through_facade(self):
        sim = BIPSSimulation(plan=linear_wing(2), config=BIPSConfig(seed=62))
        sim.add_user("u-a", "A")
        sim.login_via_lan("u-a")
        assert not sim.server.registry.is_logged_in("u-a")  # still in flight
        sim.run(until_seconds=1.0)
        assert sim.server.registry.is_logged_in("u-a")
        responses = [m for m in sim.user("u-a").inbox if isinstance(m, LoginResponse)]
        assert len(responses) == 1 and responses[0].ok
