"""Tests for tracking-report latency distributions and package exports."""

from __future__ import annotations

import repro
from repro.core.simulation import TrackingReport, UserTrackingReport


def make_user(userid: str, latencies: tuple[float, ...]) -> UserTrackingReport:
    return UserTrackingReport(
        userid=userid,
        accuracy=0.9,
        transitions=len(latencies),
        detected_transitions=len(latencies),
        mean_detection_latency_seconds=(
            sum(latencies) / len(latencies) if latencies else None
        ),
        detection_latencies_seconds=latencies,
    )


class TestLatencyDistribution:
    def test_all_latencies_pooled(self):
        report = TrackingReport(
            users=(make_user("a", (1.0, 3.0)), make_user("b", (2.0,))),
            horizon_seconds=100.0,
        )
        assert sorted(report.all_detection_latencies_seconds) == [1.0, 2.0, 3.0]

    def test_percentiles(self):
        report = TrackingReport(
            users=(make_user("a", (1.0, 2.0, 3.0, 4.0, 5.0)),),
            horizon_seconds=100.0,
        )
        assert report.latency_percentile(50) == 3.0
        assert report.latency_percentile(100) == 5.0

    def test_percentile_without_samples(self):
        report = TrackingReport(users=(make_user("a", ()),), horizon_seconds=10.0)
        assert report.latency_percentile(50) is None

    def test_empty_report_defaults(self):
        report = TrackingReport(users=(), horizon_seconds=10.0)
        assert report.mean_accuracy == 1.0
        assert report.mean_detection_latency_seconds is None


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_exports_resolve(self):
        from repro import core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_bluetooth_exports_resolve(self):
        from repro import bluetooth

        for name in bluetooth.__all__:
            assert getattr(bluetooth, name) is not None

    def test_experiments_exports_resolve(self):
        from repro import experiments

        for name in experiments.__all__:
            assert getattr(experiments, name) is not None
