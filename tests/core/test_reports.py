"""Tests for the occupancy/analytics reports."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.building.layouts import linear_wing
from repro.core.location_db import LocationDatabase
from repro.core.registry import UserRegistry
from repro.core.reports import OccupancyReport

A, B = BDAddr(1), BDAddr(2)


@pytest.fixture
def report() -> OccupancyReport:
    registry = UserRegistry()
    registry.register("u-a", "Alice", "pw")
    registry.register("u-b", "Bob", "pw")
    registry.login("u-a", "pw", A, tick=0)
    registry.login("u-b", "pw", B, tick=0)
    return OccupancyReport(LocationDatabase(), registry, linear_wing(3))


class TestOccupancy:
    def test_empty_database(self, report):
        occupancy = report.occupancy()
        assert [room.room_id for room in occupancy] == ["wing-0", "wing-1", "wing-2"]
        assert all(room.count == 0 for room in occupancy)
        assert report.total_tracked() == 0

    def test_resolves_usernames(self, report):
        report.location_db.apply_presence(A, "wing-1", 100, "ws")
        report.location_db.apply_presence(B, "wing-1", 110, "ws")
        occupancy = {room.room_id: room for room in report.occupancy()}
        assert occupancy["wing-1"].count == 2
        assert occupancy["wing-1"].usernames == ("Alice", "Bob")

    def test_unbound_device_shows_address(self, report):
        ghost = BDAddr(0x999)
        report.location_db.apply_presence(ghost, "wing-0", 100, "ws")
        occupancy = {room.room_id: room for room in report.occupancy()}
        assert occupancy["wing-0"].usernames == (str(ghost),)

    def test_total_tracked(self, report):
        report.location_db.apply_presence(A, "wing-0", 100, "ws")
        report.location_db.apply_presence(B, "wing-2", 100, "ws")
        assert report.total_tracked() == 2


class TestVisitStats:
    def _seed_history(self, report):
        db = report.location_db
        db.apply_presence(A, "wing-0", 0, "ws")
        db.apply_presence(A, "wing-1", 3200, "ws")  # 1 s in wing-0
        db.apply_presence(A, "wing-0", 3200 + 6400, "ws")  # 2 s in wing-1
        db.apply_absence(A, "wing-0", 3200 + 6400 + 3200, "ws")  # 1 s again

    def test_visit_stats(self, report):
        self._seed_history(report)
        stats = report.visit_stats([A])
        assert stats["wing-0"].visits == 2
        assert stats["wing-0"].total_dwell_seconds == pytest.approx(2.0)
        assert stats["wing-0"].mean_dwell_seconds == pytest.approx(1.0)
        assert stats["wing-1"].visits == 1
        assert stats["wing-2"].visits == 0
        assert stats["wing-2"].mean_dwell_seconds is None

    def test_open_ended_stay_not_counted(self, report):
        report.location_db.apply_presence(A, "wing-0", 0, "ws")
        stats = report.visit_stats([A])
        assert stats["wing-0"].visits == 0

    def test_movement_matrix(self, report):
        self._seed_history(report)
        matrix = report.movement_matrix([A])
        assert matrix == {("wing-0", "wing-1"): 1, ("wing-1", "wing-0"): 1}

    def test_movement_matrix_skips_absences(self, report):
        db = report.location_db
        db.apply_presence(A, "wing-0", 0, "ws")
        db.apply_absence(A, "wing-0", 100, "ws")
        db.apply_presence(A, "wing-2", 200, "ws")
        matrix = report.movement_matrix([A])
        # wing-0 -> (unknown) -> wing-2 still counts as one move.
        assert matrix == {("wing-0", "wing-2"): 1}

    def test_busiest_rooms(self, report):
        self._seed_history(report)
        busiest = report.busiest_rooms([A], top=2)
        assert busiest[0].room_id == "wing-0"
        assert len(busiest) == 2

    def test_busiest_rooms_validation(self, report):
        with pytest.raises(ValueError):
            report.busiest_rooms([A], top=0)
