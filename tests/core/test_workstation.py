"""Tests for the workstation's window evaluation and delta reporting."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.bluetooth.device import BluetoothDevice
from repro.bluetooth.packets import FHSPacket
from repro.core.scheduler import MasterSchedulingPolicy
from repro.core.workstation import Workstation
from repro.lan.messages import PresenceUpdate, WorkstationHello
from repro.lan.transport import LANTransport
from repro.sim.clock import ticks_from_seconds

DEV = BDAddr(0x77)


@pytest.fixture
def env(kernel):
    lan = LANTransport(kernel)
    server_inbox = []
    lan.register("server", lambda src, msg: server_inbox.append(msg))
    workstation = Workstation(
        kernel=kernel,
        workstation_id="ws:lab",
        room_id="lab",
        device=BluetoothDevice(address=BDAddr(0xF0)),
        policy=MasterSchedulingPolicy(),
        lan=lan,
        miss_threshold=2,
    )
    return kernel, lan, workstation, server_inbox


def inject_response(workstation, device, tick):
    """Pretend `device` answered the inquiry at `tick`."""
    packet = FHSPacket(sender=device, clkn=0, channel=0, tx_tick=tick)
    workstation.inquiry._on_fhs(packet, tick)


class TestWorkstation:
    def test_hello_sent_on_start(self, env):
        kernel, lan, workstation, inbox = env
        workstation.start(horizon_tick=ticks_from_seconds(60))
        kernel.run_until(100)
        hellos = [m for m in inbox if isinstance(m, WorkstationHello)]
        assert len(hellos) == 1
        assert hellos[0].room_id == "lab"

    def test_presence_delta_after_window(self, env):
        kernel, lan, workstation, inbox = env
        workstation.start(horizon_tick=ticks_from_seconds(60))
        inject_response(workstation, DEV, tick=100)
        kernel.run_until(ticks_from_seconds(16))  # past window 1 end
        updates = [m for m in inbox if isinstance(m, PresenceUpdate)]
        assert len(updates) == 1
        assert updates[0].present and updates[0].device == DEV

    def test_no_duplicate_presence_while_present(self, env):
        kernel, lan, workstation, inbox = env
        horizon = ticks_from_seconds(60)
        workstation.start(horizon_tick=horizon)
        cycle = workstation.policy.operational_cycle_ticks
        for window_index in range(3):
            inject_response(workstation, DEV, tick=window_index * cycle + 100)
        kernel.run_until(horizon)
        updates = [m for m in inbox if isinstance(m, PresenceUpdate)]
        assert len(updates) == 1  # delta reporting: one presence, no repeats

    def test_absence_after_two_silent_windows(self, env):
        kernel, lan, workstation, inbox = env
        horizon = ticks_from_seconds(70)
        workstation.start(horizon_tick=horizon)
        inject_response(workstation, DEV, tick=100)  # seen in window 1 only
        kernel.run_until(horizon)
        updates = [m for m in inbox if isinstance(m, PresenceUpdate)]
        assert [u.present for u in updates] == [True, False]
        # Absence is declared at the end of window 3 (two consecutive misses).
        cycle = workstation.policy.operational_cycle_ticks
        window = workstation.policy.inquiry_window_ticks
        assert updates[1].sent_tick == 2 * cycle + window

    def test_rediscovery_after_absence_is_new_presence(self, env):
        kernel, lan, workstation, inbox = env
        # Horizon ends before the device could be declared absent again.
        horizon = ticks_from_seconds(100)
        workstation.start(horizon_tick=horizon)
        cycle = workstation.policy.operational_cycle_ticks
        inject_response(workstation, DEV, tick=100)
        # silent for windows 2 and 3 -> absent; returns in window 6.
        kernel.run_until(5 * cycle)
        inject_response(workstation, DEV, tick=5 * cycle + 50)
        kernel.run_until(horizon)
        updates = [m for m in inbox if isinstance(m, PresenceUpdate)]
        assert [u.present for u in updates] == [True, False, True]

    def test_windows_evaluated_counter(self, env):
        kernel, lan, workstation, inbox = env
        workstation.start(horizon_tick=ticks_from_seconds(61))
        kernel.run_until(ticks_from_seconds(61))
        # 15.4 s cycle: windows end at 3.84, 19.24, 34.64, 50.04 -> 4 windows.
        assert workstation.windows_evaluated == 4

    def test_extend_horizon_schedules_more_windows(self, env):
        kernel, lan, workstation, inbox = env
        workstation.start(horizon_tick=ticks_from_seconds(20))
        kernel.run_until(ticks_from_seconds(20))
        evaluated_first = workstation.windows_evaluated
        workstation.start(horizon_tick=ticks_from_seconds(40))
        kernel.run_until(ticks_from_seconds(40))
        assert workstation.windows_evaluated > evaluated_first
        # Hello is only sent once.
        hellos = [m for m in inbox if isinstance(m, WorkstationHello)]
        assert len(hellos) == 1

    def test_extend_does_not_double_schedule(self, env):
        kernel, lan, workstation, inbox = env
        workstation.start(horizon_tick=ticks_from_seconds(40))
        workstation.start(horizon_tick=ticks_from_seconds(40))
        kernel.run_until(ticks_from_seconds(40))
        # windows end at 3.84, 19.24, 34.64 within 40 s -> exactly 3.
        assert workstation.windows_evaluated == 3

    def test_negative_offset_rejected(self, kernel):
        lan = LANTransport(kernel)
        lan.register("server", lambda s, m: None)
        with pytest.raises(ValueError):
            Workstation(
                kernel=kernel,
                workstation_id="ws:x",
                room_id="x",
                device=BluetoothDevice(address=BDAddr(1)),
                policy=MasterSchedulingPolicy(),
                lan=lan,
                schedule_offset_ticks=-5,
            )

    def test_present_count(self, env):
        kernel, lan, workstation, inbox = env
        workstation.start(horizon_tick=ticks_from_seconds(60))
        inject_response(workstation, DEV, tick=100)
        inject_response(workstation, BDAddr(0x78), tick=105)
        kernel.run_until(ticks_from_seconds(16))
        assert workstation.present_count == 2
