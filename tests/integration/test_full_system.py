"""Integration scenarios exercising the whole stack at once."""

from __future__ import annotations

import pytest

from repro.building.layouts import academic_department, multi_floor_department
from repro.core.config import BIPSConfig
from repro.core.errors import NotLoggedInError
from repro.core.reports import OccupancyReport
from repro.core.simulation import BIPSSimulation
from repro.experiments.scalability import ScalabilityConfig, run_scalability
from repro.lan.messages import LocationResponse


class TestMultiFloorDeployment:
    @pytest.fixture(scope="class")
    def sim(self):
        simulation = BIPSSimulation(
            plan=multi_floor_department(2), config=BIPSConfig(seed=42)
        )
        simulation.add_user("u-up", "Upstairs")
        simulation.add_user("u-down", "Downstairs")
        simulation.login("u-up")
        simulation.login("u-down")
        simulation.follow_route("u-up", ["f1/seminar"])
        simulation.follow_route("u-down", ["f0/lab-1"])
        simulation.run(until_seconds=120.0)
        return simulation

    def test_both_floors_track(self, sim):
        assert sim.server.locate("u-down", "Upstairs") == "f1/seminar"
        assert sim.server.locate("u-up", "Downstairs") == "f0/lab-1"

    def test_cross_floor_navigation(self, sim):
        path = sim.server.navigate("u-down", "Upstairs")
        assert path is not None
        assert path.rooms[0] == "f0/lab-1"
        assert path.rooms[-1] == "f1/seminar"
        # The route climbs through the stairwell corridors.
        assert "f0/corridor-w" in path.rooms
        assert "f1/corridor-w" in path.rooms

    def test_one_workstation_per_room(self, sim):
        assert len(sim.workstations) == 24
        sim_rooms = {ws.room_id for ws in sim.workstations.values()}
        assert sim_rooms == set(sim.plan.room_ids())


class TestFullFeatureRun:
    """Everything on at once: enrolment, interference, refresh, loss."""

    @pytest.fixture(scope="class")
    def sim(self):
        simulation = BIPSSimulation(
            plan=academic_department(),
            config=BIPSConfig(
                seed=77,
                enroll_users=True,
                model_interference=True,
                lan_loss_probability=0.05,
                refresh_interval_cycles=3,
            ),
        )
        for index in range(5):
            userid = f"u-{index}"
            simulation.add_user(userid, f"User{index}")
            simulation.login(userid)
        rng = simulation.rng.child("scenario")
        rooms = simulation.plan.room_ids()
        for index in range(5):
            simulation.walk(
                f"u-{index}",
                start_room=rng.choice(rooms),
                hops=3,
                start_at_seconds=rng.uniform(0.0, 30.0),
            )
        simulation.run(until_seconds=500.0)
        return simulation

    def test_tracking_survives_everything(self, sim):
        report = sim.tracking_report()
        assert report.mean_accuracy > 0.70
        assert all(user.detection_rate > 0.5 for user in report.users)

    def test_enrolment_happened(self, sim):
        assert sum(ws.enrolled for ws in sim.workstations.values()) >= 5

    def test_interference_was_active(self, sim):
        assert sim.band is not None and sim.band.stats.checks > 0

    def test_refresh_was_active(self, sim):
        assert sum(ws.refreshes_sent for ws in sim.workstations.values()) > 0

    def test_occupancy_report_consistent_with_db(self, sim):
        analytics = OccupancyReport(
            sim.server.location_db, sim.server.registry, sim.plan
        )
        assert analytics.total_tracked() == sim.server.location_db.known_count


class TestSessionLifecycle:
    def test_logout_mid_walk_hides_user(self):
        sim = BIPSSimulation(config=BIPSConfig(seed=5))
        sim.add_user("u-a", "A")
        sim.add_user("u-b", "B")
        sim.login("u-a")
        sim.login("u-b")
        sim.follow_route("u-a", ["lab-1", "corridor-w"])
        sim.run(until_seconds=60.0)
        assert sim.server.locate("u-b", "A") is not None
        sim.logout("u-a")
        with pytest.raises(NotLoggedInError):
            sim.server.locate("u-b", "A")
        # The device keeps moving and being discovered, but the DB was
        # purged and re-fills only anonymously (device-keyed).
        sim.run(until_seconds=120.0)

    def test_relogin_resumes_tracking(self):
        sim = BIPSSimulation(config=BIPSConfig(seed=6))
        sim.add_user("u-a", "A")
        sim.add_user("u-b", "B")
        sim.login("u-a")
        sim.login("u-b")
        sim.follow_route("u-a", ["seminar"])
        sim.run(until_seconds=60.0)
        sim.logout("u-a")
        sim.login("u-a")
        sim.run(until_seconds=150.0)
        assert sim.server.locate("u-b", "A") == "seminar"


class TestDeterminism:
    def test_identical_seeds_identical_outcomes(self):
        def run(seed):
            sim = BIPSSimulation(config=BIPSConfig(seed=seed))
            sim.add_user("u-a", "A")
            sim.login("u-a")
            sim.walk("u-a", start_room="lab-1", hops=4)
            sim.run(until_seconds=300.0)
            history = sim.server.location_db.history_of(sim.user("u-a").device.address)
            return [(event.tick, event.room_id) for event in history]

        assert run(99) == run(99)
        assert run(99) != run(100)

    def test_lan_query_and_tracking_agree(self):
        sim = BIPSSimulation(config=BIPSConfig(seed=7))
        sim.add_user("u-a", "A")
        sim.add_user("u-b", "B")
        sim.login("u-a")
        sim.login("u-b")
        sim.follow_route("u-a", ["library"])
        sim.run(until_seconds=60.0)
        direct = sim.server.locate("u-b", "A")
        sim.query_location_via_lan("u-b", "A")
        sim.run(until_seconds=61.0)
        response = next(
            m for m in sim.user("u-b").inbox if isinstance(m, LocationResponse)
        )
        assert response.room_id == direct == "library"


class TestScalabilityExperimentSmall:
    def test_small_sweep(self):
        result = run_scalability(
            ScalabilityConfig(room_counts=(3, 6), user_count=3, duration_seconds=200.0)
        )
        small, large = result.point_for(3), result.point_for(6)
        assert small.users == large.users == 3
        assert large.presence_updates <= 3 * max(1, small.presence_updates)
        assert "rooms" in result.render()
        with pytest.raises(KeyError):
            result.point_for(99)
