"""Tests for device identity, packets, constants, and the HCI facade."""

from __future__ import annotations

import pytest

from repro.bluetooth import constants
from repro.bluetooth.address import BDAddr
from repro.bluetooth.btclock import BluetoothClock
from repro.bluetooth.connection import DisconnectReason
from repro.bluetooth.device import BluetoothDevice, make_devices
from repro.bluetooth.hci import HostController
from repro.bluetooth.hopping import Train, continuous_inquiry, train_of_position
from repro.bluetooth.packets import DM1Packet, FHSPacket, IDPacket
from repro.sim.rng import RandomStream


class TestConstants:
    def test_train_pass_is_10ms(self):
        # 16 slots of 625 µs.
        assert constants.TICKS_PER_TRAIN_PASS == 32

    def test_dwell_is_256_passes(self):
        assert constants.TICKS_PER_TRAIN_DWELL == 256 * 32

    def test_max_inquiry_needs_three_switches(self):
        # "at least three train switches must take place, so the inquiry
        # state may have to last for 10.24s"
        assert constants.INQUIRY_MAX_TICKS == 4 * constants.TICKS_PER_TRAIN_DWELL
        assert constants.INQUIRY_MAX_TICKS == 32768  # 10.24 s at 3200 Hz

    def test_bips_window_is_one_and_a_half_dwells(self):
        assert constants.BIPS_INQUIRY_WINDOW_TICKS == 8192 + 4096  # 3.84 s

    def test_scan_defaults(self):
        assert constants.T_INQUIRY_SCAN_TICKS == 4096
        assert constants.T_W_INQUIRY_SCAN_TICKS == 36
        assert constants.T_PAGE_SCAN_TICKS == constants.T_INQUIRY_SCAN_TICKS


class TestPackets:
    def test_fhs_carries_identity(self):
        packet = FHSPacket(sender=BDAddr(7), clkn=123, channel=5, tx_tick=999)
        assert packet.sender == BDAddr(7)
        assert packet.clkn == 123

    def test_id_packet(self):
        packet = IDPacket(lap=0x9E8B33, channel=3, tx_tick=10)
        assert packet.lap == constants.GIAC_LAP

    def test_dm1_payload_cap_documented(self):
        assert DM1Packet.MAX_PAYLOAD_BYTES == 17


class TestBluetoothDevice:
    def test_label_falls_back_to_address(self):
        device = BluetoothDevice(address=BDAddr(1))
        assert device.label == str(BDAddr(1))
        named = BluetoothDevice(address=BDAddr(1), name="alice")
        assert named.label == "alice"

    def test_base_phase_validated(self):
        with pytest.raises(ValueError):
            BluetoothDevice(address=BDAddr(1), base_phase=32)

    def test_page_scan_behavior_anchored_by_clock(self):
        device = BluetoothDevice(address=BDAddr(1), clock=BluetoothClock(offset=5000))
        assert device.page_scan_behavior().window_anchor == 5000 % 4096

    def test_make_devices_unique(self):
        devices = make_devices(20, RandomStream(1, "d"))
        assert len({d.address for d in devices}) == 20

    def test_make_devices_phase_range(self):
        devices = make_devices(50, RandomStream(2, "d"), phase_range=(0, 15))
        assert all(
            train_of_position(d.base_phase) is Train.A for d in devices
        )

    def test_make_devices_invalid_range(self):
        with pytest.raises(ValueError):
            make_devices(5, RandomStream(3, "d"), phase_range=(10, 40))


class TestHostController:
    def _controller(self, kernel):
        device = BluetoothDevice(address=BDAddr(0xFFFF), name="ws")
        return HostController(
            kernel, device, continuous_inquiry(), RandomStream(9, "hc")
        )

    def test_connection_lifecycle(self, kernel):
        controller = self._controller(kernel)
        target = BluetoothDevice(address=BDAddr(0x1111), name="slave")
        events = []
        controller.create_connection(target, callback=events.append)
        kernel.run_until(50_000)
        assert len(events) == 1
        assert events[0].success
        assert controller.piconet.active_count == 1
        connection = controller.disconnect(
            target.address, DisconnectReason.LOCAL_CLOSE
        )
        assert connection is not None
        assert controller.piconet.active_count == 0

    def test_page_timeout_fails_connection(self, kernel):
        controller = self._controller(kernel)
        target = BluetoothDevice(address=BDAddr(0x1111))
        events = []
        controller.create_connection(target, callback=events.append, scanning=False)
        kernel.run_until(100_000)
        assert len(events) == 1
        assert not events[0].success
        assert controller.piconet.active_count == 0

    def test_inquiry_listener_plumbing(self, kernel):
        controller = self._controller(kernel)
        seen = []
        controller.on_inquiry_result(lambda packet, tick: seen.append(packet.sender))
        packet = FHSPacket(sender=BDAddr(5), clkn=0, channel=0, tx_tick=10)
        controller.inquiry._on_fhs(packet, 10)
        assert seen == [BDAddr(5)]

    def test_expire_stale_links(self, kernel):
        controller = HostController(
            kernel,
            BluetoothDevice(address=BDAddr(0xFFFF)),
            continuous_inquiry(),
            RandomStream(9, "hc"),
            supervision_timeout_ticks=100,
        )
        target = BluetoothDevice(address=BDAddr(0x1111))
        controller.create_connection(target)
        kernel.run_until(10_000)
        assert controller.piconet.active_count == 1
        expired = controller.expire_stale_links()
        assert len(expired) == 1
        assert controller.piconet.active_count == 0
