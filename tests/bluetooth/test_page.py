"""Tests for the page procedure."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.bluetooth.page import (
    PAGE_HANDSHAKE_TICKS,
    PageOutcome,
    PageProcedure,
    PageResult,
    PageScanBehavior,
)
from repro.sim.rng import RandomStream


@pytest.fixture
def pager(kernel):
    return PageProcedure(kernel, RandomStream(5, "pager"))


class TestPageScanBehavior:
    def test_next_window_start(self):
        behavior = PageScanBehavior(window_anchor=100, interval_ticks=4096)
        assert behavior.next_window_start(0) == 100
        assert behavior.next_window_start(100) == 100
        assert behavior.next_window_start(101) == 4196

    def test_defaults_match_inquiry_scan_defaults(self):
        behavior = PageScanBehavior()
        assert behavior.interval_ticks == 4096  # 1.28 s
        assert behavior.window_ticks == 36  # 11.25 ms


class TestPaging:
    def test_connects_at_scan_window_plus_handshake(self, kernel, pager):
        results: list[PageResult] = []
        behavior = PageScanBehavior(window_anchor=1000)
        pager.page(BDAddr(1), behavior, results.append)
        kernel.run_until(50_000)
        assert len(results) == 1
        result = results[0]
        assert result.outcome is PageOutcome.CONNECTED
        assert result.finished_tick == 1000 + PAGE_HANDSHAKE_TICKS
        assert result.latency_ticks == result.finished_tick

    def test_latency_bounded_by_scan_interval(self, kernel, pager):
        results = []
        kernel.run_until(500)
        pager.page(BDAddr(1), PageScanBehavior(window_anchor=17), results.append)
        kernel.run_until(50_000)
        assert results[0].latency_ticks <= 4096 + PAGE_HANDSHAKE_TICKS

    def test_not_scanning_times_out(self, kernel, pager):
        results = []
        pager.page(
            BDAddr(1),
            PageScanBehavior(scanning=False),
            results.append,
            timeout_ticks=1000,
        )
        kernel.run_until(5_000)
        assert results[0].outcome is PageOutcome.TIMEOUT
        assert results[0].finished_tick == 1000

    def test_stale_clock_estimate_adds_dwell(self, kernel):
        # Force the stale-estimate branch with probability 1.
        pager = PageProcedure(
            kernel, RandomStream(5, "pager"), clock_estimate_fresh_probability=0.0
        )
        results = []
        pager.page(
            BDAddr(1), PageScanBehavior(window_anchor=0), results.append,
            timeout_ticks=100_000,
        )
        kernel.run_until(100_000)
        assert results[0].outcome is PageOutcome.CONNECTED
        assert results[0].latency_ticks >= 8192  # at least one train dwell

    def test_double_page_same_target_rejected(self, kernel, pager):
        pager.page(BDAddr(1), PageScanBehavior(), lambda r: None)
        with pytest.raises(RuntimeError):
            pager.page(BDAddr(1), PageScanBehavior(), lambda r: None)

    def test_abort(self, kernel, pager):
        results = []
        pager.page(BDAddr(1), PageScanBehavior(window_anchor=1000), results.append)
        assert pager.abort(BDAddr(1)) is True
        kernel.run_until(50_000)
        assert results == []
        assert pager.abort(BDAddr(1)) is False

    def test_counters(self, kernel, pager):
        pager.page(BDAddr(1), PageScanBehavior(), lambda r: None)
        pager.page(
            BDAddr(2), PageScanBehavior(scanning=False), lambda r: None,
            timeout_ticks=100,
        )
        kernel.run_until(50_000)
        assert pager.attempts == 2
        assert pager.connected == 1
        assert pager.timeouts == 1
        assert pager.in_flight == 0

    def test_invalid_probability(self, kernel):
        with pytest.raises(ValueError):
            PageProcedure(kernel, RandomStream(1), clock_estimate_fresh_probability=1.5)
