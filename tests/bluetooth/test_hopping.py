"""Tests for the inquiry hopping structure and transmit-schedule arithmetic.

The inverse lookup ``next_tx_of_position`` is the load-bearing primitive
of the whole event-driven baseband, so it is cross-checked against a
brute-force forward enumeration of everything the master transmits.
"""

from __future__ import annotations

import pytest

from repro.bluetooth.constants import (
    NUM_INQUIRY_FREQUENCIES,
    NUM_RF_CHANNELS,
    TICKS_PER_TRAIN_DWELL,
    TICKS_PER_TRAIN_PASS,
)
from repro.bluetooth.hopping import (
    InquiryTransmitSchedule,
    PeriodicWindows,
    Train,
    TrainStrategy,
    continuous_inquiry,
    inquiry_sequence,
    periodic_inquiry,
    train_of_position,
    tx_offset_of_position,
)


def enumerate_transmissions(schedule: InquiryTransmitSchedule, until: int):
    """Reference model: every (tick, position) the master transmits."""
    for window in schedule.windows.iter_windows(0, until):
        pass_index = 0
        while True:
            base = window.start + pass_index * TICKS_PER_TRAIN_PASS
            if base >= window.end or base >= until:
                break
            train = schedule.train_of_pass(pass_index)
            for position in range(NUM_INQUIRY_FREQUENCIES):
                if train_of_position(position) is train:
                    tick = base + tx_offset_of_position(position)
                    if tick < window.end and tick < until:
                        yield tick, position
            pass_index += 1


class TestSequence:
    def test_length_and_uniqueness(self):
        seq = inquiry_sequence()
        assert len(seq) == 32
        assert len(set(seq)) == 32

    def test_channels_in_band(self):
        assert all(0 <= c < NUM_RF_CHANNELS for c in inquiry_sequence())

    def test_deterministic(self):
        assert inquiry_sequence() == inquiry_sequence()

    def test_different_lap_different_sequence(self):
        assert inquiry_sequence(0x9E8B33) != inquiry_sequence(0x123456)

    def test_invalid_lap_rejected(self):
        with pytest.raises(ValueError):
            inquiry_sequence(1 << 24)


class TestTrains:
    def test_partition(self):
        a_positions = [p for p in range(32) if train_of_position(p) is Train.A]
        b_positions = [p for p in range(32) if train_of_position(p) is Train.B]
        assert a_positions == list(range(16))
        assert b_positions == list(range(16, 32))

    def test_other(self):
        assert Train.A.other is Train.B
        assert Train.B.other is Train.A

    def test_position_out_of_range(self):
        with pytest.raises(ValueError):
            train_of_position(32)

    def test_tx_offsets_are_distinct_within_a_pass(self):
        offsets = [tx_offset_of_position(p) for p in range(16)]
        assert len(set(offsets)) == 16

    def test_tx_offsets_land_in_even_slots(self):
        # Transmissions happen in even slots (offsets 0,1 then 4,5 ...).
        for position in range(16):
            offset = tx_offset_of_position(position)
            assert (offset // 2) % 2 == 0

    def test_two_frequencies_per_even_slot(self):
        # Positions 2k and 2k+1 occupy the two halves of the same slot.
        for k in range(8):
            assert tx_offset_of_position(2 * k) + 1 == tx_offset_of_position(2 * k + 1)


class TestPeriodicWindows:
    def test_single_continuous_window(self):
        windows = PeriodicWindows.continuous()
        assert windows.is_active(0)
        assert windows.is_active(10**9)
        assert len(list(windows.iter_windows(0, 10**6))) == 1

    def test_periodic_activity(self):
        windows = PeriodicWindows(start=0, window_ticks=100, period_ticks=500)
        assert windows.is_active(0)
        assert windows.is_active(99)
        assert not windows.is_active(100)
        assert not windows.is_active(499)
        assert windows.is_active(500)

    def test_iter_windows_overlap_semantics(self):
        windows = PeriodicWindows(start=0, window_ticks=100, period_ticks=500)
        spans = [(w.start, w.end) for w in windows.iter_windows(50, 1100)]
        assert spans == [(0, 100), (500, 600), (1000, 1100)]

    def test_count_limits_windows(self):
        windows = PeriodicWindows(start=0, window_ticks=100, period_ticks=500, count=2)
        assert not windows.is_active(1000)
        assert len(list(windows.iter_windows(0, 10**6))) == 2

    def test_start_offset(self):
        windows = PeriodicWindows(start=300, window_ticks=100, period_ticks=500)
        assert not windows.is_active(0)
        assert windows.is_active(300)

    def test_containing(self):
        windows = PeriodicWindows(start=0, window_ticks=100, period_ticks=500)
        window = windows.containing(550)
        assert window is not None and (window.start, window.end) == (500, 600)
        assert windows.containing(200) is None

    def test_next_active_jumps_idle_gaps(self):
        windows = PeriodicWindows(start=300, window_ticks=100, period_ticks=500)
        assert windows.next_active(0) == 300
        assert windows.next_active(300) == 300
        assert windows.next_active(350) == 350  # inside a window: no jump
        assert windows.next_active(400) == 800  # first tick past the window
        assert windows.next_active(799) == 800

    def test_next_active_exhausted_count(self):
        windows = PeriodicWindows(start=0, window_ticks=100, period_ticks=500, count=2)
        assert windows.next_active(550) == 550
        assert windows.next_active(600) is None
        assert windows.next_active(10**9) is None

    def test_next_active_matches_is_active_scan(self):
        windows = PeriodicWindows(start=7, window_ticks=13, period_ticks=40, count=5)
        horizon = windows.start + 6 * windows.period_ticks
        for tick in range(horizon):
            expected = next(
                (t for t in range(tick, horizon) if windows.is_active(t)), None
            )
            assert windows.next_active(tick) == expected, tick

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicWindows(start=0, window_ticks=0, period_ticks=10)
        with pytest.raises(ValueError):
            PeriodicWindows(start=0, window_ticks=20, period_ticks=10)
        with pytest.raises(ValueError):
            PeriodicWindows(start=0, window_ticks=10, period_ticks=10, count=0)


class TestTrainPlan:
    def test_alternate_switches_every_dwell(self):
        schedule = continuous_inquiry(start_train=Train.A)
        assert schedule.train_of_pass(0) is Train.A
        assert schedule.train_of_pass(255) is Train.A
        assert schedule.train_of_pass(256) is Train.B
        assert schedule.train_of_pass(512) is Train.A

    def test_alternate_starting_on_b(self):
        schedule = continuous_inquiry(start_train=Train.B)
        assert schedule.train_of_pass(0) is Train.B
        assert schedule.train_of_pass(256) is Train.A

    def test_single_train_strategies(self):
        a_only = continuous_inquiry(strategy=TrainStrategy.A_ONLY)
        b_only = continuous_inquiry(strategy=TrainStrategy.B_ONLY)
        for pass_index in (0, 100, 1000):
            assert a_only.train_of_pass(pass_index) is Train.A
            assert b_only.train_of_pass(pass_index) is Train.B

    def test_train_at(self):
        schedule = continuous_inquiry(start_train=Train.A)
        assert schedule.train_at(0) is Train.A
        assert schedule.train_at(TICKS_PER_TRAIN_DWELL) is Train.B

    def test_train_at_idle_master(self):
        schedule = periodic_inquiry(window_ticks=100, period_ticks=1000)
        assert schedule.train_at(500) is None

    def test_dwell_duration_constant(self):
        # N_inquiry = 256 passes of 10 ms = 2.56 s.
        assert TICKS_PER_TRAIN_DWELL == 256 * TICKS_PER_TRAIN_PASS == 8192


class TestNextTxAgainstBruteForce:
    """Cross-check the O(1) inverse lookup against forward enumeration."""

    def check(self, schedule: InquiryTransmitSchedule, horizon: int, step: int = 997):
        transmissions: dict[int, list[int]] = {}
        for tick, position in enumerate_transmissions(schedule, horizon):
            transmissions.setdefault(position, []).append(tick)
        for position in range(NUM_INQUIRY_FREQUENCIES):
            ticks = transmissions.get(position, [])
            for from_tick in range(0, horizon, step):
                expected = next((t for t in ticks if t >= from_tick), None)
                actual = schedule.next_tx_of_position(position, from_tick, horizon)
                assert actual == expected, (
                    f"position={position} from={from_tick}: "
                    f"got {actual}, want {expected}"
                )

    def test_continuous_alternating(self):
        # Horizon covers one full A dwell plus part of the B dwell.
        self.check(continuous_inquiry(start_train=Train.A), horizon=12000)

    def test_continuous_starting_b(self):
        self.check(continuous_inquiry(start_train=Train.B), horizon=9000)

    def test_a_only_periodic_windows(self):
        schedule = periodic_inquiry(
            window_ticks=3200, period_ticks=16000, strategy=TrainStrategy.A_ONLY
        )
        self.check(schedule, horizon=36000, step=1733)

    def test_alternating_periodic_windows(self):
        schedule = periodic_inquiry(
            window_ticks=12288, period_ticks=49280, strategy=TrainStrategy.ALTERNATE
        )
        self.check(schedule, horizon=60000, step=2111)

    def test_window_not_multiple_of_pass(self):
        schedule = periodic_inquiry(
            window_ticks=333, period_ticks=1000, strategy=TrainStrategy.A_ONLY
        )
        self.check(schedule, horizon=5000, step=97)

    def test_limited_window_count(self):
        schedule = periodic_inquiry(
            window_ticks=3200,
            period_ticks=16000,
            strategy=TrainStrategy.ALTERNATE,
            count=2,
        )
        self.check(schedule, horizon=40000, step=1999)


class TestNextTxEdgeCases:
    def test_b_position_never_sent_by_a_only_master(self):
        schedule = continuous_inquiry(strategy=TrainStrategy.A_ONLY)
        assert schedule.next_tx_of_position(20, 0, 10**6) is None

    def test_before_bound_respected(self):
        schedule = continuous_inquiry(start_train=Train.A)
        first = schedule.next_tx_of_position(0, 0, 10**6)
        assert first is not None
        assert schedule.next_tx_of_position(0, 0, first) is None

    def test_result_at_or_after_from(self):
        schedule = continuous_inquiry(start_train=Train.A)
        for from_tick in (0, 1, 31, 32, 100, 8191, 8192):
            result = schedule.next_tx_of_position(5, from_tick, 10**6)
            assert result is not None and result >= from_tick

    def test_next_tx_of_channel(self):
        schedule = continuous_inquiry(start_train=Train.A)
        channel = schedule.sequence[3]
        by_channel = schedule.next_tx_of_channel(channel, 0, 10**6)
        by_position = schedule.next_tx_of_position(3, 0, 10**6)
        assert by_channel == by_position

    def test_unknown_channel_rejected(self):
        schedule = continuous_inquiry()
        unknown = next(c for c in range(79) if c not in schedule.sequence)
        with pytest.raises(ValueError):
            schedule.next_tx_of_channel(unknown, 0, 100)

    def test_is_listening_matches_windows(self):
        schedule = periodic_inquiry(window_ticks=100, period_ticks=500)
        assert schedule.is_listening(50)
        assert not schedule.is_listening(200)

    def test_invalid_passes_per_dwell(self):
        with pytest.raises(ValueError):
            InquiryTransmitSchedule(
                windows=PeriodicWindows.continuous(), passes_per_dwell=0
            )


class TestLookupCacheEviction:
    """The next_tx memo is bounded with FIFO eviction, not a full drop."""

    def test_cache_never_exceeds_bound(self, monkeypatch):
        import repro.bluetooth.hopping as hopping

        monkeypatch.setattr(hopping, "_LOOKUP_CACHE_MAX", 8)
        schedule = continuous_inquiry()
        for from_tick in range(0, 2000, 32):
            schedule.next_tx_of_position(from_tick % 32, from_tick, from_tick + 10_000)
            assert len(schedule._lookup_cache) <= 8

    def test_eviction_is_fifo(self, monkeypatch):
        import repro.bluetooth.hopping as hopping

        monkeypatch.setattr(hopping, "_LOOKUP_CACHE_MAX", 4)
        schedule = continuous_inquiry()
        queries = [(p, p * 64, p * 64 + 10_000) for p in range(6)]
        for query in queries:
            schedule.next_tx_of_position(*query)
        cached = list(schedule._lookup_cache)
        # The two oldest queries were evicted; the four newest remain.
        assert cached == queries[2:]

    def test_evicted_entries_recompute_correctly(self, monkeypatch):
        import repro.bluetooth.hopping as hopping

        monkeypatch.setattr(hopping, "_LOOKUP_CACHE_MAX", 2)
        schedule = continuous_inquiry()
        reference = continuous_inquiry()
        queries = [(p % 32, p * 17, p * 17 + 20_000) for p in range(40)]
        expected = [reference._compute_next_tx(*q) for q in queries]
        # Query forward then backward so every entry is evicted and
        # re-requested at least once.
        for query in queries:
            schedule.next_tx_of_position(*query)
        for query, want in zip(reversed(queries), reversed(expected)):
            assert schedule.next_tx_of_position(*query) == want

    def test_hit_does_not_evict(self, monkeypatch):
        import repro.bluetooth.hopping as hopping

        monkeypatch.setattr(hopping, "_LOOKUP_CACHE_MAX", 2)
        schedule = continuous_inquiry()
        schedule.next_tx_of_position(0, 0, 10_000)
        schedule.next_tx_of_position(1, 0, 10_000)
        before = list(schedule._lookup_cache)
        schedule.next_tx_of_position(0, 0, 10_000)  # hit
        assert list(schedule._lookup_cache) == before


class TestTxTicksEnumeration:
    """tx_ticks_of_position == the full scan of next_tx_of_position.

    The batched swarm engine precomputes these timetables and answers
    rendezvous queries by bisection, so the enumeration must agree with
    the single-query walk on every schedule shape.
    """

    SCHEDULES = [
        pytest.param(lambda: continuous_inquiry(), id="continuous-alternate"),
        pytest.param(lambda: continuous_inquiry(start_train=Train.B), id="continuous-train-b"),
        pytest.param(
            lambda: continuous_inquiry(strategy=TrainStrategy.A_ONLY), id="continuous-a-only"
        ),
        pytest.param(
            lambda: continuous_inquiry(strategy=TrainStrategy.B_ONLY), id="continuous-b-only"
        ),
        pytest.param(
            lambda: periodic_inquiry(3200, 16000, strategy=TrainStrategy.A_ONLY, start=777),
            id="periodic-a-only",
        ),
        pytest.param(lambda: periodic_inquiry(3200, 16000, start=777), id="periodic-alternate"),
        pytest.param(
            lambda: periodic_inquiry(1280, 4096, strategy=TrainStrategy.B_ONLY, start=5),
            id="periodic-b-only",
        ),
        pytest.param(lambda: periodic_inquiry(12288, 49280, start=123), id="periodic-long-dwell"),
        pytest.param(
            lambda: periodic_inquiry(3200, 16000, start=0, count=3), id="periodic-finite"
        ),
    ]

    @pytest.mark.parametrize("schedule_factory", SCHEDULES)
    def test_matches_single_query_scan(self, schedule_factory):
        import random

        schedule = schedule_factory()
        rnd = random.Random(20260808)
        for _ in range(60):
            position = rnd.randrange(32)
            start = rnd.randrange(0, 200_000)
            stop = start + rnd.randrange(0, 20_000)
            got = schedule.tx_ticks_of_position(position, start, stop)
            reference = []
            tick = start
            while True:
                found = schedule._compute_next_tx(position, tick, stop)
                if found is None:
                    break
                reference.append(found)
                tick = found + 1
            assert list(got) == reference, (position, start, stop)

    def test_first_element_is_next_tx(self):
        schedule = continuous_inquiry()
        for position in (0, 7, 16, 31):
            ticks = schedule.tx_ticks_of_position(position, 100, 9_000)
            assert ticks
            assert ticks[0] == schedule.next_tx_of_position(position, 100, 9_000)
            assert list(ticks) == sorted(set(ticks))

    def test_empty_span(self):
        schedule = periodic_inquiry(3200, 16000, start=0, count=1)
        assert schedule.tx_ticks_of_position(0, 20_000, 40_000) == ()
