"""InquiryScanSwarm vs per-slave InquiryScanner: identical behaviour.

The swarm is the batched engine's replacement for N per-slave scanner
objects; its acceptance bar is exact equivalence — every counter, every
response tick, every collision record, every master result.
"""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.bluetooth.btclock import CLKN_WRAP, BluetoothClock
from repro.bluetooth.hopping import (
    Train,
    TrainStrategy,
    continuous_inquiry,
    periodic_inquiry,
)
from repro.bluetooth.inquiry import InquiryProcedure
from repro.bluetooth.scan import (
    BackoffReentry,
    InquiryScanner,
    PhaseMode,
    ResponseMode,
    ScanConfig,
    ScannerState,
)
from repro.bluetooth.swarm import InquiryScanSwarm
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream


def _run_piconet(engine, seed, slave_count, scan_config, schedule_factory, horizon):
    """One piconet on either engine; returns every observable."""
    kernel = Kernel()
    schedule = schedule_factory()
    master = InquiryProcedure(kernel, schedule, name="master")
    root = RandomStream(seed, "swarm-ab")
    swarm = (
        InquiryScanSwarm(kernel, schedule, master.channel, config=scan_config, name="s")
        if engine == "batched"
        else None
    )
    handles = []
    for index in range(slave_count):
        rng = root.child("slave", str(index))
        clock = BluetoothClock(offset=rng.randint(0, CLKN_WRAP - 1))
        base_phase = rng.randint(0, 31)
        anchor = rng.randint(0, scan_config.interval_ticks - 1)
        if swarm is not None:
            handle = swarm.add_slave(
                BDAddr(0x1000 + index),
                rng=rng.child("draws"),
                clock=clock,
                base_phase=base_phase,
                window_anchor=anchor,
                horizon_tick=horizon,
                name=f"slave-{index}",
            )
        else:
            handle = InquiryScanner(
                kernel,
                BDAddr(0x1000 + index),
                schedule,
                master.channel,
                rng=rng.child("draws"),
                config=scan_config,
                clock=clock,
                base_phase=base_phase,
                window_anchor=anchor,
                horizon_tick=horizon,
                name=f"slave-{index}",
            )
        handle.start()
        handles.append(handle)
    kernel.run_until(horizon)
    slaves = [
        (
            h.state.value,
            h.stats.ids_heard,
            h.stats.backoffs,
            h.stats.responses,
            h.stats.first_heard_tick,
            h.stats.first_response_tick,
            tuple(h.stats.response_ticks),
        )
        for h in handles
    ]
    stats = master.channel.stats
    collisions = tuple((c.tick, c.rf_channel, c.senders) for c in stats.collisions)
    return (
        slaves,
        (stats.transmissions, stats.delivered, stats.collided, collisions),
        (master.responses_received, master.responses_missed, master.responses_blocked),
        tuple((str(r.address), r.clkn, r.discovered_tick) for r in master.results),
    )


CASES = [
    pytest.param(
        ScanConfig.continuous(phase_mode=PhaseMode.TRAIN_LOCKED),
        lambda: periodic_inquiry(3200, 16000, strategy=TrainStrategy.A_ONLY),
        64_000,
        8,
        id="figure2-style-train-locked",
    ),
    pytest.param(
        ScanConfig(),
        lambda: continuous_inquiry(start_train=Train.B),
        200_000,
        5,
        id="default-windows-sequence",
    ),
    pytest.param(
        ScanConfig.continuous(response_mode=ResponseMode.BACKOFF_EACH),
        lambda: continuous_inquiry(),
        100_000,
        4,
        id="backoff-each",
    ),
    pytest.param(
        ScanConfig(
            response_mode=ResponseMode.SINGLE,
            backoff_reentry=BackoffReentry.NEXT_WINDOW,
        ),
        lambda: continuous_inquiry(),
        300_000,
        4,
        id="single-next-window",
    ),
    pytest.param(
        ScanConfig(phase_mode=PhaseMode.FIXED),
        lambda: continuous_inquiry(),
        200_000,
        3,
        id="fixed-phase",
    ),
    pytest.param(
        ScanConfig.interleaved_with_page_scan(),
        lambda: continuous_inquiry(),
        400_000,
        3,
        id="interleaved-page-scan",
    ),
]


class TestSwarmEquivalence:
    @pytest.mark.parametrize("scan_config, schedule_factory, horizon, slaves", CASES)
    def test_swarm_matches_scanners(self, scan_config, schedule_factory, horizon, slaves):
        object_run = _run_piconet(
            "object", 99, slaves, scan_config, schedule_factory, horizon
        )
        batched_run = _run_piconet(
            "batched", 99, slaves, scan_config, schedule_factory, horizon
        )
        assert object_run == batched_run

    def test_many_seeds_single_slave(self):
        # One slave, many clock/phase draws: sweeps the rendezvous
        # arithmetic across offsets without a master-side confounder.
        scan = ScanConfig()
        for seed in range(20):
            object_run = _run_piconet(
                "object", seed, 1, scan, continuous_inquiry, 120_000
            )
            batched_run = _run_piconet(
                "batched", seed, 1, scan, continuous_inquiry, 120_000
            )
            assert object_run == batched_run, f"seed {seed} diverged"


class TestSwarmLifecycle:
    def _swarm(self, kernel, horizon=1 << 20):
        schedule = continuous_inquiry()
        master = InquiryProcedure(kernel, schedule, name="m")
        swarm = InquiryScanSwarm(
            kernel, schedule, master.channel, config=ScanConfig(), name="life"
        )
        rng = RandomStream(5, "life")
        handle = swarm.add_slave(
            BDAddr(0xA), rng=rng, clock=BluetoothClock(offset=123), horizon_tick=horizon
        )
        return swarm, handle

    def test_initial_state_idle(self, kernel):
        _, handle = self._swarm(kernel)
        assert handle.state is ScannerState.IDLE
        assert handle.stats.ids_heard == 0

    def test_double_start_rejected(self, kernel):
        _, handle = self._swarm(kernel)
        handle.start()
        with pytest.raises(RuntimeError):
            handle.start()

    def test_stop_freezes_row(self, kernel):
        _, handle = self._swarm(kernel)
        handle.start()
        kernel.run_until(10_000)
        heard_at_stop = handle.stats.ids_heard
        handle.stop()
        kernel.run_until(200_000)
        assert handle.state is ScannerState.STOPPED
        assert handle.stats.ids_heard == heard_at_stop

    def test_exhausted_past_horizon(self, kernel):
        _, handle = self._swarm(kernel, horizon=4)
        handle.start()
        kernel.run_until(100)
        assert handle.state is ScannerState.EXHAUSTED

    def test_base_phase_validated(self, kernel):
        swarm, _ = self._swarm(kernel)
        with pytest.raises(ValueError):
            swarm.add_slave(BDAddr(0xB), rng=RandomStream(6, "x"), base_phase=32)

    def test_handle_surface(self, kernel):
        swarm, handle = self._swarm(kernel)
        assert handle.address == BDAddr(0xA)
        assert handle.name == str(BDAddr(0xA))
        assert handle.listen_position(0) == swarm.listen_position(handle.row, 0)
        assert swarm.slave_count == 1

    def test_next_hear_matches_scanner(self, kernel):
        schedule = continuous_inquiry()
        master = InquiryProcedure(kernel, schedule, name="m")
        clock = BluetoothClock(offset=987_654)
        swarm = InquiryScanSwarm(
            kernel, schedule, master.channel, config=ScanConfig(), name="nh"
        )
        handle = swarm.add_slave(
            BDAddr(0xC), rng=RandomStream(7, "a"), clock=clock, base_phase=9
        )
        scanner = InquiryScanner(
            kernel,
            BDAddr(0xC),
            schedule,
            master.channel,
            rng=RandomStream(7, "a"),
            config=ScanConfig(),
            clock=clock,
            base_phase=9,
        )
        for from_tick in (0, 1, 37, 4095, 4096, 70_000):
            for ignore in (False, True):
                assert handle.next_hear(from_tick, ignore) == scanner.next_hear(
                    from_tick, ignore_windows=ignore
                ), (from_tick, ignore)
