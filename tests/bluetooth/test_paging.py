"""Tests for the slot-level page procedure."""

from __future__ import annotations

import pytest

from repro.bluetooth.device import BluetoothDevice, make_devices
from repro.bluetooth.page import PageOutcome
from repro.bluetooth.paging import N_PAGE, PAGE_HANDSHAKE_TICKS, SlotLevelPager
from repro.sim.clock import ticks_from_seconds
from repro.sim.rng import RandomStream


def one_device(seed: int = 1) -> BluetoothDevice:
    return make_devices(1, RandomStream(seed, "paging"))[0]


def run_page(kernel, target, **kwargs):
    pager = SlotLevelPager(kernel)
    outcomes = []
    pager.page(target, outcomes.append, **kwargs)
    kernel.run_until(kernel.now + ticks_from_seconds(20))
    assert len(outcomes) == 1
    return pager, outcomes[0]


class TestSlotLevelPaging:
    def test_fresh_estimate_connects_within_one_scan_interval(self, kernel):
        target = one_device()
        pager, outcome = run_page(kernel, target)
        assert outcome.result.outcome is PageOutcome.CONNECTED
        assert outcome.train_prediction_correct
        # Rendezvous waits at most two 1.28 s page-scan intervals (one
        # interval, plus one more when the slave's phase crosses a
        # boundary between the prediction and its next window), plus the
        # handshake.
        assert outcome.result.latency_ticks <= 2 * 4096 + PAGE_HANDSHAKE_TICKS

    def test_handshake_is_six_slots(self, kernel):
        target = one_device(seed=2)
        pager, outcome = run_page(kernel, target)
        assert (
            outcome.result.finished_tick
            == outcome.rendezvous_tick + PAGE_HANDSHAKE_TICKS
        )

    def test_rendezvous_lands_in_a_scan_window(self, kernel):
        target = one_device(seed=3)
        pager, outcome = run_page(kernel, target)
        anchor = target.clock.offset % 4096
        offset_in_interval = (outcome.rendezvous_tick - anchor) % 4096
        assert offset_in_interval < 36  # inside the 11.25 ms window

    def test_not_scanning_times_out(self, kernel):
        target = one_device(seed=4)
        timeout = 2 * N_PAGE * 32
        pager, outcome = run_page(kernel, target, scanning=False, timeout_ticks=timeout)
        assert outcome.result.outcome is PageOutcome.TIMEOUT
        assert outcome.result.latency_ticks == timeout
        assert pager.timeouts == 1

    def test_stale_estimate_may_pick_wrong_train_and_still_connect(self, kernel):
        """A half-period clock error flips the predicted phase."""
        connected = 0
        wrong = 0
        for seed in range(30):
            pager = SlotLevelPager(kernel)
            target = one_device(seed=100 + seed)
            outcomes = []
            # Error of ~41 phase periods scrambles the phase estimate.
            pager.page(
                target, outcomes.append, estimate_error_ticks=41 * 4096 + 2048
            )
            kernel.run_until(kernel.now + ticks_from_seconds(12))
            outcome = outcomes[0]
            if outcome.result.outcome is PageOutcome.CONNECTED:
                connected += 1
            if not outcome.train_prediction_correct:
                wrong += 1
        # Wrong-train predictions happen (~50 %), yet the alternation
        # always recovers within the timeout.
        assert wrong >= 5
        assert connected == 30

    def test_wrong_train_costs_about_one_dwell(self, kernel):
        """Average latency with stale estimates exceeds fresh ones."""

        def mean_latency(error):
            total = 0
            count = 25
            for seed in range(count):
                pager = SlotLevelPager(kernel)
                target = one_device(seed=200 + seed)
                outcomes = []
                pager.page(target, outcomes.append, estimate_error_ticks=error)
                kernel.run_until(kernel.now + ticks_from_seconds(12))
                total += outcomes[0].result.latency_ticks
            return total / count

        fresh = mean_latency(0)
        stale = mean_latency(37 * 4096 + 1000)
        # The stale penalty is roughly P(wrong train) * the mean wait
        # for the master's train switch (measured: ~1100 ticks at 25
        # samples; assert a conservative fraction of a dwell).
        assert stale > fresh + 0.15 * N_PAGE * 32

    def test_counters(self, kernel):
        pager = SlotLevelPager(kernel)
        outcomes = []
        pager.page(one_device(seed=5), outcomes.append)
        pager.page(one_device(seed=6), outcomes.append, scanning=False,
                   timeout_ticks=1000)
        kernel.run_until(kernel.now + ticks_from_seconds(20))
        assert pager.attempts == 2
        assert pager.connected == 1
        assert pager.timeouts == 1

    def test_timeout_shorter_than_rendezvous(self, kernel):
        # A timeout of a few slots can expire before the scan window.
        target = one_device(seed=7)
        pager, outcome = run_page(kernel, target, timeout_ticks=8)
        assert outcome.result.outcome in (PageOutcome.TIMEOUT, PageOutcome.CONNECTED)
        assert outcome.result.latency_ticks <= 8 + PAGE_HANDSHAKE_TICKS
