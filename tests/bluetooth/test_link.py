"""Tests for the round-robin link scheduler."""

from __future__ import annotations

import pytest

from repro.bluetooth.link import (
    DM1_PAYLOAD_BYTES,
    AppMessage,
    RoundRobinLinkScheduler,
)
from repro.sim.clock import ticks_from_seconds


class TestAppMessage:
    def test_rounds_needed(self):
        assert AppMessage(17, 0).rounds_needed == 1
        assert AppMessage(18, 0).rounds_needed == 2
        assert AppMessage(500, 0).rounds_needed == 30

    def test_invalid_payload(self):
        with pytest.raises(ValueError):
            AppMessage(0, 0)

    def test_latency_only_when_delivered(self):
        message = AppMessage(17, 100)
        assert message.latency_seconds is None
        message.delivered_tick = 100 + 3200
        assert message.latency_seconds == 1.0


class TestScheduler:
    def test_single_slave_gets_all_rounds(self):
        scheduler = RoundRobinLinkScheduler()
        scheduler.attach("s1")
        message = scheduler.enqueue("s1", 170, tick=0)  # 10 rounds
        delivered = scheduler.serve_window(0, 10 * 4)  # exactly 10 rounds
        assert delivered == 170
        assert message.delivered
        assert message.delivered_tick == 40

    def test_round_robin_fairness(self):
        scheduler = RoundRobinLinkScheduler()
        for slave_id in ("a", "b"):
            scheduler.attach(slave_id)
            scheduler.enqueue(slave_id, 1700, tick=0)
        scheduler.serve_window(0, 100 * 4)  # 100 rounds -> 50 each
        assert scheduler.state_of("a").bytes_delivered == 50 * DM1_PAYLOAD_BYTES
        assert scheduler.state_of("b").bytes_delivered == 50 * DM1_PAYLOAD_BYTES

    def test_keep_alive_polls_when_idle(self):
        scheduler = RoundRobinLinkScheduler()
        scheduler.attach("s1")
        delivered = scheduler.serve_window(0, 40)
        assert delivered == 0
        assert scheduler.state_of("s1").idle_polls == 10

    def test_message_spans_windows(self):
        scheduler = RoundRobinLinkScheduler()
        scheduler.attach("s1")
        message = scheduler.enqueue("s1", 170, tick=0)  # 10 rounds
        scheduler.serve_window(0, 6 * 4)  # only 6 rounds fit
        assert not message.delivered
        assert message.bytes_sent == 6 * DM1_PAYLOAD_BYTES
        scheduler.serve_window(100, 100 + 6 * 4)
        assert message.delivered

    def test_fifo_per_slave(self):
        scheduler = RoundRobinLinkScheduler()
        scheduler.attach("s1")
        first = scheduler.enqueue("s1", 17, tick=0)
        second = scheduler.enqueue("s1", 17, tick=0)
        scheduler.serve_window(0, 4)
        assert first.delivered and not second.delivered

    def test_empty_wheel_idles(self):
        scheduler = RoundRobinLinkScheduler()
        assert scheduler.serve_window(0, 1000) == 0
        assert scheduler.slots_idle == 500

    def test_detach_drops_queue(self):
        scheduler = RoundRobinLinkScheduler()
        scheduler.attach("s1")
        scheduler.enqueue("s1", 17, tick=0)
        state = scheduler.detach("s1")
        assert state is not None and len(state.queue) == 1
        assert scheduler.slave_count == 0
        assert scheduler.detach("s1") is None

    def test_invalid_window(self):
        scheduler = RoundRobinLinkScheduler()
        with pytest.raises(ValueError):
            scheduler.serve_window(100, 50)

    def test_goodput_formula(self):
        scheduler = RoundRobinLinkScheduler()
        for index in range(7):
            scheduler.attach(f"s{index}")
        goodput = scheduler.per_slave_goodput_bytes_per_second(11.56, 15.4)
        # 11.56 s / 1.25 ms per round = 9248 rounds; /7 slaves; *17 B; /15.4 s.
        expected = (11.56 / 0.00125) / 7 * 17 / 15.4
        assert goodput == pytest.approx(expected)

    def test_goodput_zero_without_slaves(self):
        assert RoundRobinLinkScheduler().per_slave_goodput_bytes_per_second(
            11.56, 15.4
        ) == 0.0


class TestServingExperiment:
    def test_sweep_shapes(self):
        from repro.experiments.serving import ServingConfig, run_serving

        result = run_serving(ServingConfig(slave_counts=(1, 7), cycles=5))
        one = result.point_for(1)
        seven = result.point_for(7)
        # Goodput divides by occupancy.
        assert one.goodput_bytes_per_second == pytest.approx(
            7 * seven.goodput_bytes_per_second
        )
        # Latency grows with occupancy but everything still delivers
        # within the cycle (500 B needs 30 rounds; 7 slaves -> 262 ms).
        assert seven.message_latency.mean > one.message_latency.mean
        assert seven.messages_pending == 0
        assert seven.message_latency.maximum < 1.0
        # Payload polls are a small fraction: the serving window is huge
        # compared to one 500 B message per slave per cycle.
        assert seven.payload_fraction < 0.05
        assert "goodput" in result.render()

    def test_config_validation(self):
        from repro.experiments.serving import ServingConfig

        with pytest.raises(ValueError):
            ServingConfig(slave_counts=(8,))
        with pytest.raises(ValueError):
            ServingConfig(cycles=0)
        with pytest.raises(ValueError):
            ServingConfig(message_bytes=0)
