"""Tests for BD_ADDR handling."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr, address_block


class TestBDAddr:
    def test_parts_roundtrip(self):
        addr = BDAddr.from_parts(nap=0x1234, uap=0x56, lap=0x789ABC)
        assert addr.nap == 0x1234
        assert addr.uap == 0x56
        assert addr.lap == 0x789ABC

    def test_value_layout(self):
        addr = BDAddr.from_parts(nap=0x0001, uap=0x02, lap=0x000003)
        assert addr.value == (0x0001 << 32) | (0x02 << 24) | 0x000003

    def test_parse_format_roundtrip(self):
        text = "00:11:22:33:44:55"
        assert BDAddr.parse(text).format() == text

    def test_format_is_uppercase_hex(self):
        assert BDAddr(0xAABBCCDDEEFF).format() == "AA:BB:CC:DD:EE:FF"

    def test_parse_rejects_garbage(self):
        for bad in ("not-an-addr", "00:11:22:33:44", "00:11:22:33:44:GG", ""):
            with pytest.raises(ValueError):
                BDAddr.parse(bad)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            BDAddr(1 << 48)
        with pytest.raises(ValueError):
            BDAddr(-1)

    def test_from_parts_validates_ranges(self):
        with pytest.raises(ValueError):
            BDAddr.from_parts(nap=1 << 16, uap=0, lap=0)
        with pytest.raises(ValueError):
            BDAddr.from_parts(nap=0, uap=1 << 8, lap=0)
        with pytest.raises(ValueError):
            BDAddr.from_parts(nap=0, uap=0, lap=1 << 24)

    def test_equality_and_hash(self):
        assert BDAddr(5) == BDAddr(5)
        assert BDAddr(5) != BDAddr(6)
        assert len({BDAddr(5), BDAddr(5), BDAddr(6)}) == 2

    def test_ordering(self):
        assert BDAddr(1) < BDAddr(2)

    def test_str_is_colon_form(self):
        assert str(BDAddr(0)) == "00:00:00:00:00:00"


class TestAddressBlock:
    def test_yields_unique_consecutive(self):
        addrs = list(address_block(10))
        assert len(set(addrs)) == 10
        assert addrs[1].value == addrs[0].value + 1

    def test_zero_count(self):
        assert list(address_block(0)) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            list(address_block(-1))
