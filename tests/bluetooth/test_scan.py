"""Tests for the slave inquiry scanner.

``next_hear`` is cross-checked against a per-tick reference model, and
the state machine is exercised through controlled scenarios on the
kernel.
"""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.bluetooth.btclock import BluetoothClock
from repro.bluetooth.constants import TICKS_PER_SLOT
from repro.bluetooth.hopping import (
    Train,
    TrainStrategy,
    continuous_inquiry,
    periodic_inquiry,
    train_of_position,
)
from repro.bluetooth.inquiry import InquiryProcedure
from repro.bluetooth.scan import (
    BackoffReentry,
    InquiryScanner,
    PhaseMode,
    ResponseMode,
    ScanConfig,
    ScannerState,
)
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream
from tests.bluetooth.test_hopping import enumerate_transmissions


def make_scanner(kernel, schedule, master, **overrides):
    defaults = dict(
        kernel=kernel,
        address=BDAddr(0xABCDEF),
        schedule=schedule,
        channel=master.channel,
        rng=RandomStream(1, "scan-test"),
        config=ScanConfig(),
        clock=BluetoothClock(),
        base_phase=0,
        window_anchor=0,
        horizon_tick=200_000,
        name="slave",
    )
    defaults.update(overrides)
    return InquiryScanner(**defaults)


def reference_next_hear(scanner, schedule, from_tick, before_tick, ignore_windows=False):
    """Per-tick reference: the first master tx the slave can hear."""
    tx_by_tick = {}
    for tick, position in enumerate_transmissions(schedule, before_tick):
        tx_by_tick.setdefault(tick, []).append(position)
    config = scanner.config
    for tick in range(from_tick, before_tick):
        if not (ignore_windows or config.is_continuous):
            offset = (tick - scanner.window_anchor) % config.interval_ticks
            if offset >= config.window_ticks:
                continue
        if scanner.listen_position(tick) in tx_by_tick.get(tick, ()):
            return tick
    return None


class TestListenPosition:
    def test_fixed_never_moves(self, kernel):
        schedule = continuous_inquiry()
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig(phase_mode=PhaseMode.FIXED), base_phase=7,
        )
        assert scanner.listen_position(0) == 7
        assert scanner.listen_position(10**6) == 7

    def test_sequence_steps_every_1280ms(self, kernel):
        schedule = continuous_inquiry()
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig(phase_mode=PhaseMode.SEQUENCE), base_phase=30,
        )
        assert scanner.listen_position(0) == 30
        assert scanner.listen_position(4096) == 31
        assert scanner.listen_position(8192) == 0  # wraps mod 32

    def test_train_locked_stays_in_train(self, kernel):
        schedule = continuous_inquiry()
        master = InquiryProcedure(kernel, schedule)
        for base_phase, train in ((3, Train.A), (20, Train.B)):
            scanner = make_scanner(
                kernel, schedule, master,
                config=ScanConfig(phase_mode=PhaseMode.TRAIN_LOCKED),
                base_phase=base_phase,
            )
            for step in range(40):
                position = scanner.listen_position(step * 4096)
                assert train_of_position(position) is train

    def test_train_locked_walks_all_sixteen(self, kernel):
        schedule = continuous_inquiry()
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig(phase_mode=PhaseMode.TRAIN_LOCKED), base_phase=5,
        )
        positions = {scanner.listen_position(step * 4096) for step in range(16)}
        assert positions == set(range(16))

    def test_clock_offset_shifts_phase(self, kernel):
        schedule = continuous_inquiry()
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig(phase_mode=PhaseMode.SEQUENCE),
            clock=BluetoothClock(offset=4096), base_phase=0,
        )
        assert scanner.listen_position(0) == 1


class TestWindowGeometry:
    def test_window_at_or_after(self, kernel):
        schedule = continuous_inquiry()
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig(window_ticks=36, interval_ticks=4096), window_anchor=100,
        )
        assert scanner._window_at_or_after(0) == (100, 136)
        assert scanner._window_at_or_after(100) == (100, 136)
        assert scanner._window_at_or_after(135) == (100, 136)
        assert scanner._window_at_or_after(136) == (4196, 4232)

    def test_continuous_config(self):
        assert ScanConfig.continuous().is_continuous
        assert not ScanConfig().is_continuous

    def test_interleaved_config_doubles_interval(self):
        config = ScanConfig.interleaved_with_page_scan()
        assert config.interval_ticks == 2 * 4096
        assert config.window_ticks == 36

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ScanConfig(window_ticks=0)
        with pytest.raises(ValueError):
            ScanConfig(window_ticks=100, interval_ticks=50)
        with pytest.raises(ValueError):
            ScanConfig(backoff_max_slots=-1)


class TestNextHearAgainstBruteForce:
    @pytest.mark.parametrize("base_phase", [0, 5, 15, 16, 25])
    @pytest.mark.parametrize("phase_mode", list(PhaseMode))
    def test_continuous_scan_continuous_master(self, kernel, base_phase, phase_mode):
        schedule = continuous_inquiry(start_train=Train.A)
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig.continuous(phase_mode=phase_mode),
            base_phase=base_phase,
            clock=BluetoothClock(offset=2000),
        )
        horizon = 10_000
        for from_tick in (0, 1, 777, 4095, 4096, 9000):
            expected = reference_next_hear(scanner, schedule, from_tick, horizon)
            assert scanner.next_hear(from_tick, horizon) == expected

    @pytest.mark.parametrize("anchor", [0, 50, 1000, 4000])
    def test_windowed_scan(self, kernel, anchor):
        schedule = continuous_inquiry(start_train=Train.A)
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig(phase_mode=PhaseMode.SEQUENCE),
            base_phase=3,
            window_anchor=anchor,
        )
        horizon = 12_000
        for from_tick in (0, 100, 4000, 8500):
            expected = reference_next_hear(scanner, schedule, from_tick, horizon)
            assert scanner.next_hear(from_tick, horizon) == expected

    def test_windowed_scan_periodic_master(self, kernel):
        schedule = periodic_inquiry(
            window_ticks=3200, period_ticks=16000, strategy=TrainStrategy.A_ONLY
        )
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig(phase_mode=PhaseMode.TRAIN_LOCKED),
            base_phase=9,
            window_anchor=123,
        )
        horizon = 35_000
        for from_tick in (0, 3000, 5000, 15000, 20000):
            expected = reference_next_hear(scanner, schedule, from_tick, horizon)
            assert scanner.next_hear(from_tick, horizon) == expected

    def test_ignore_windows_listens_everywhere(self, kernel):
        schedule = continuous_inquiry(start_train=Train.A)
        master = InquiryProcedure(kernel, schedule)
        # A scan window that only opens well into the future...
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig(window_ticks=40, interval_ticks=8192, phase_mode=PhaseMode.FIXED),
            base_phase=0,
            window_anchor=5000,
        )
        windowed = scanner.next_hear(0, 10_000)
        always = scanner.next_hear(0, 10_000, ignore_windows=True)
        assert always is not None and windowed is not None
        assert always < windowed

    def test_none_when_unreachable(self, kernel):
        schedule = continuous_inquiry(strategy=TrainStrategy.A_ONLY)
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig.continuous(phase_mode=PhaseMode.FIXED),
            base_phase=20,  # train B position, A-only master
        )
        assert scanner.next_hear(0, 100_000) is None


class TestStateMachine:
    def _run_discovery(self, kernel, response_mode=ResponseMode.CONTINUOUS, **overrides):
        schedule = continuous_inquiry(start_train=Train.A)
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig.continuous(
                phase_mode=PhaseMode.FIXED, response_mode=response_mode
            ),
            base_phase=0,
            **overrides,
        )
        scanner.start()
        return master, scanner

    def test_backoff_precedes_first_response(self, kernel):
        master, scanner = self._run_discovery(kernel)
        kernel.run_until(10_000)
        assert scanner.stats.backoffs >= 1
        assert scanner.stats.first_heard_tick is not None
        assert scanner.stats.first_response_tick is not None
        # The response comes after the first hear plus the backoff.
        assert scanner.stats.first_response_tick > scanner.stats.first_heard_tick

    def test_response_is_one_slot_after_hear(self, kernel):
        master, scanner = self._run_discovery(kernel)
        kernel.run_until(10_000)
        tick = master.discovery_tick(scanner.address)
        assert tick is not None
        # FHS arrives exactly 625 µs after the ID the slave answered.
        assert (tick - scanner.stats.first_heard_tick) % 1 == 0
        assert tick in scanner.stats.response_ticks

    def test_single_mode_stops_after_one_response(self, kernel):
        master, scanner = self._run_discovery(kernel, response_mode=ResponseMode.SINGLE)
        kernel.run_until(50_000)
        assert scanner.stats.responses == 1
        assert scanner.state is ScannerState.DONE

    def test_continuous_mode_keeps_responding(self, kernel):
        master, scanner = self._run_discovery(kernel)
        kernel.run_until(20_000)
        assert scanner.stats.responses > 10

    def test_backoff_each_spaces_responses(self, kernel):
        master, scanner = self._run_discovery(
            kernel, response_mode=ResponseMode.BACKOFF_EACH
        )
        kernel.run_until(50_000)
        # Each response is preceded by its own backoff.
        assert scanner.stats.backoffs >= scanner.stats.responses

    def test_backoff_duration_bounded(self, kernel):
        schedule = continuous_inquiry(start_train=Train.A)
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig.continuous(
                phase_mode=PhaseMode.FIXED, backoff_max_slots=10,
                response_mode=ResponseMode.SINGLE,
            ),
            base_phase=0,
        )
        scanner.start()
        kernel.run_until(10_000)
        delay = scanner.stats.first_response_tick - scanner.stats.first_heard_tick
        # Backoff of at most 10 slots, plus at most one 10 ms pass to re-hear.
        assert delay <= 10 * TICKS_PER_SLOT + 32 + TICKS_PER_SLOT

    def test_stop_cancels_everything(self, kernel):
        master, scanner = self._run_discovery(kernel)
        kernel.run_until(100)
        scanner.stop()
        responses_at_stop = scanner.stats.responses
        kernel.run_until(50_000)
        assert scanner.stats.responses == responses_at_stop
        assert scanner.state is ScannerState.STOPPED

    def test_start_twice_rejected(self, kernel):
        master, scanner = self._run_discovery(kernel)
        with pytest.raises(RuntimeError):
            scanner.start()

    def test_unreachable_slave_exhausts(self, kernel):
        schedule = continuous_inquiry(strategy=TrainStrategy.A_ONLY)
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig.continuous(phase_mode=PhaseMode.FIXED),
            base_phase=20,  # train B, never transmitted
            horizon_tick=5_000,
        )
        scanner.start()
        kernel.run_until(5_000)
        assert scanner.state is ScannerState.EXHAUSTED
        assert master.discovered_count == 0

    def test_delayed_start(self, kernel):
        schedule = continuous_inquiry(start_train=Train.A)
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig.continuous(phase_mode=PhaseMode.FIXED),
            base_phase=0,
        )
        scanner.start(at_tick=5_000)
        kernel.run_until(20_000)
        assert scanner.stats.first_heard_tick >= 5_000


class TestResponseTimeout:
    def test_quiet_gap_triggers_fresh_backoff(self, kernel):
        """Between periodic master windows the slave reverts to plain scan."""
        schedule = periodic_inquiry(
            window_ticks=3200, period_ticks=16000, strategy=TrainStrategy.A_ONLY
        )
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig.continuous(phase_mode=PhaseMode.FIXED),
            base_phase=0,
            horizon_tick=40_000,
        )
        scanner.start()
        kernel.run_until(40_000)
        # Three windows -> at least one fresh backoff per window.
        assert scanner.stats.backoffs >= 3

    def test_within_window_no_extra_backoff(self, kernel):
        schedule = continuous_inquiry(start_train=Train.A)
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig.continuous(phase_mode=PhaseMode.FIXED),
            base_phase=0,
            horizon_tick=8_000,  # inside the first A dwell
        )
        scanner.start()
        kernel.run_until(8_000)
        # Continuous transmissions on the same train: exactly one backoff.
        assert scanner.stats.backoffs == 1
        assert scanner.stats.responses > 5


class TestBackoffReentry:
    def test_next_window_policy_waits_for_window(self, kernel):
        schedule = continuous_inquiry(start_train=Train.A)
        master = InquiryProcedure(kernel, schedule)
        scanner = make_scanner(
            kernel, schedule, master,
            config=ScanConfig(
                phase_mode=PhaseMode.FIXED,
                backoff_reentry=BackoffReentry.NEXT_WINDOW,
                response_mode=ResponseMode.SINGLE,
            ),
            base_phase=0,
            window_anchor=0,
        )
        scanner.start()
        kernel.run_until(30_000)
        response = scanner.stats.first_response_tick
        assert response is not None
        # The response must land inside a scan window.
        assert (response - TICKS_PER_SLOT) % 4096 < 36
