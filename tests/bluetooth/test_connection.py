"""Tests for baseband connections and piconet membership."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.bluetooth.connection import Connection, ConnectionState, DisconnectReason
from repro.bluetooth.piconet import Piconet, PiconetFullError

MASTER = BDAddr(0xAAAA)


def make_connection(am_addr: int = 1, established: int = 0, timeout: int = 1000):
    return Connection(
        master=MASTER,
        slave=BDAddr(0xBBBB),
        am_addr=am_addr,
        established_tick=established,
        supervision_timeout_ticks=timeout,
    )


class TestConnection:
    def test_initial_state(self):
        conn = make_connection()
        assert conn.active
        assert conn.last_heard_tick == 0
        assert conn.duration_ticks is None

    def test_am_addr_validated(self):
        with pytest.raises(ValueError):
            make_connection(am_addr=0)
        with pytest.raises(ValueError):
            make_connection(am_addr=8)

    def test_exchange_updates_liveness(self):
        conn = make_connection()
        conn.exchange(500, payload="hello")
        assert conn.last_heard_tick == 500
        assert conn.packets_exchanged == 1
        assert conn.payloads == ["hello"]

    def test_exchange_backwards_rejected(self):
        conn = make_connection()
        conn.exchange(500)
        with pytest.raises(ValueError):
            conn.exchange(400)

    def test_exchange_on_closed_rejected(self):
        conn = make_connection()
        conn.close(100, DisconnectReason.LOCAL_CLOSE)
        with pytest.raises(RuntimeError):
            conn.exchange(200)

    def test_supervision_expiry(self):
        conn = make_connection(timeout=1000)
        assert not conn.is_supervision_expired(1000)
        assert conn.is_supervision_expired(1001)
        conn.exchange(900)
        assert not conn.is_supervision_expired(1500)

    def test_close_records_reason_and_duration(self):
        conn = make_connection(established=100)
        conn.close(600, DisconnectReason.DEVICE_LEFT)
        assert conn.state is ConnectionState.CLOSED
        assert conn.close_reason is DisconnectReason.DEVICE_LEFT
        assert conn.duration_ticks == 500

    def test_close_idempotent(self):
        conn = make_connection()
        conn.close(100, DisconnectReason.LOCAL_CLOSE)
        conn.close(200, DisconnectReason.REMOTE_CLOSE)
        assert conn.closed_tick == 100
        assert conn.close_reason is DisconnectReason.LOCAL_CLOSE

    def test_describe(self):
        text = make_connection().describe()
        assert "am=1" in text and "active" in text


class TestPiconet:
    def test_attach_assigns_am_addrs(self):
        piconet = Piconet(master=MASTER)
        connections = [piconet.attach(BDAddr(i), tick=0) for i in range(1, 4)]
        assert [c.am_addr for c in connections] == [1, 2, 3]

    def test_seven_slave_limit(self):
        piconet = Piconet(master=MASTER)
        for i in range(1, 8):
            piconet.attach(BDAddr(i), tick=0)
        assert piconet.is_full
        with pytest.raises(PiconetFullError):
            piconet.attach(BDAddr(99), tick=0)

    def test_duplicate_attach_rejected(self):
        piconet = Piconet(master=MASTER)
        piconet.attach(BDAddr(1), tick=0)
        with pytest.raises(ValueError):
            piconet.attach(BDAddr(1), tick=5)

    def test_detach_frees_am_addr(self):
        piconet = Piconet(master=MASTER)
        piconet.attach(BDAddr(1), tick=0)
        piconet.attach(BDAddr(2), tick=0)
        piconet.detach(BDAddr(1), tick=10, reason=DisconnectReason.DEVICE_LEFT)
        fresh = piconet.attach(BDAddr(3), tick=20)
        assert fresh.am_addr == 1  # the freed address is reused

    def test_detach_unknown_returns_none(self):
        piconet = Piconet(master=MASTER)
        assert piconet.detach(BDAddr(1), 0, DisconnectReason.LOCAL_CLOSE) is None

    def test_detach_moves_to_history(self):
        piconet = Piconet(master=MASTER)
        piconet.attach(BDAddr(1), tick=0)
        piconet.detach(BDAddr(1), tick=10, reason=DisconnectReason.LOCAL_CLOSE)
        assert piconet.active_count == 0
        assert len(piconet.history) == 1
        assert piconet.history[0].close_reason is DisconnectReason.LOCAL_CLOSE

    def test_expire_supervision(self):
        piconet = Piconet(master=MASTER, supervision_timeout_ticks=100)
        piconet.attach(BDAddr(1), tick=0)
        lively = piconet.attach(BDAddr(2), tick=0)
        lively.exchange(150)
        expired = piconet.expire_supervision(tick=200)
        assert [c.slave for c in expired] == [BDAddr(1)]
        assert BDAddr(2) in piconet
        assert BDAddr(1) not in piconet

    def test_members_sorted_by_am_addr(self):
        piconet = Piconet(master=MASTER)
        piconet.attach(BDAddr(5), tick=0)
        piconet.attach(BDAddr(3), tick=0)
        assert [c.am_addr for c in piconet.members] == [1, 2]

    def test_connection_of(self):
        piconet = Piconet(master=MASTER)
        conn = piconet.attach(BDAddr(1), tick=0)
        assert piconet.connection_of(BDAddr(1)) is conn
        assert piconet.connection_of(BDAddr(9)) is None
