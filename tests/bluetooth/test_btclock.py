"""Tests for the Bluetooth native clock."""

from __future__ import annotations

import pytest

from repro.bluetooth.btclock import CLKN_WRAP, BluetoothClock


class TestBluetoothClock:
    def test_zero_offset_tracks_kernel_time(self):
        clock = BluetoothClock()
        assert clock.clkn(0) == 0
        assert clock.clkn(12345) == 12345

    def test_offset_applied(self):
        clock = BluetoothClock(offset=100)
        assert clock.clkn(0) == 100
        assert clock.clkn(50) == 150

    def test_wraps_at_28_bits(self):
        clock = BluetoothClock(offset=CLKN_WRAP - 1)
        assert clock.clkn(1) == 0

    def test_scan_phase_advances_every_4096_ticks(self):
        clock = BluetoothClock()
        assert clock.scan_phase(0, 32) == 0
        assert clock.scan_phase(4095, 32) == 0
        assert clock.scan_phase(4096, 32) == 1
        assert clock.scan_phase(4096 * 33, 32) == 1  # wraps mod 32

    def test_scan_phase_modulus(self):
        clock = BluetoothClock()
        assert clock.scan_phase(4096 * 20, 16) == 4

    def test_scan_phase_with_offset(self):
        clock = BluetoothClock(offset=4096)
        assert clock.scan_phase(0, 32) == 1

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            BluetoothClock().scan_phase(0, 0)

    def test_ticks_to_next_phase_change(self):
        clock = BluetoothClock()
        assert clock.ticks_to_next_phase_change(0) == 4096
        assert clock.ticks_to_next_phase_change(1) == 4095
        assert clock.ticks_to_next_phase_change(4095) == 1
        assert clock.ticks_to_next_phase_change(4096) == 4096

    def test_next_phase_change_consistent_with_phase(self):
        clock = BluetoothClock(offset=777)
        for tick in (0, 100, 5000, 123456):
            delta = clock.ticks_to_next_phase_change(tick)
            before = clock.scan_phase(tick + delta - 1, 32)
            after = clock.scan_phase(tick + delta, 32)
            assert after == (before + 1) % 32
