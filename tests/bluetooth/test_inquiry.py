"""Tests for the master inquiry procedure."""

from __future__ import annotations

from repro.bluetooth.address import BDAddr
from repro.bluetooth.hopping import TrainStrategy, continuous_inquiry, periodic_inquiry
from repro.bluetooth.inquiry import InquiryProcedure
from repro.bluetooth.packets import FHSPacket


def fhs(sender_value: int, tick: int, channel: int = 0) -> FHSPacket:
    return FHSPacket(sender=BDAddr(sender_value), clkn=0, channel=channel, tx_tick=tick)


class TestReception:
    def test_first_response_recorded(self, kernel):
        master = InquiryProcedure(kernel, continuous_inquiry())
        master._on_fhs(fhs(1, 100), 100)
        assert master.discovered_count == 1
        assert master.discovery_tick(BDAddr(1)) == 100

    def test_duplicates_keep_first_tick(self, kernel):
        master = InquiryProcedure(kernel, continuous_inquiry())
        master._on_fhs(fhs(1, 100), 100)
        master._on_fhs(fhs(1, 500), 500)
        assert master.discovered_count == 1
        assert master.discovery_tick(BDAddr(1)) == 100
        assert master.responses_received == 2

    def test_last_seen_tracks_duplicates(self, kernel):
        master = InquiryProcedure(kernel, continuous_inquiry())
        master._on_fhs(fhs(1, 100), 100)
        master._on_fhs(fhs(1, 500), 500)
        assert master.last_seen[BDAddr(1)] == 500

    def test_response_outside_window_missed(self, kernel):
        schedule = periodic_inquiry(window_ticks=100, period_ticks=1000)
        master = InquiryProcedure(kernel, schedule)
        master._on_fhs(fhs(1, 500), 500)  # master is serving, not listening
        assert master.discovered_count == 0
        assert master.responses_missed == 1

    def test_callback_fires_once_per_device(self, kernel):
        discovered = []
        master = InquiryProcedure(
            kernel,
            continuous_inquiry(),
            on_discovered=lambda packet, tick: discovered.append((packet.sender, tick)),
        )
        master._on_fhs(fhs(1, 10), 10)
        master._on_fhs(fhs(1, 20), 20)
        master._on_fhs(fhs(2, 30), 30)
        assert discovered == [(BDAddr(1), 10), (BDAddr(2), 30)]

    def test_results_sorted_by_discovery_time(self, kernel):
        master = InquiryProcedure(kernel, continuous_inquiry())
        master._on_fhs(fhs(2, 50), 50)
        master._on_fhs(fhs(1, 60), 60)
        assert [r.address.value for r in master.results] == [2, 1]

    def test_discovered_by(self, kernel):
        master = InquiryProcedure(kernel, continuous_inquiry())
        master._on_fhs(fhs(1, 10), 10)
        master._on_fhs(fhs(2, 20), 20)
        assert master.discovered_by(15) == 1
        assert master.discovered_by(20) == 2

    def test_forget_allows_rediscovery(self, kernel):
        master = InquiryProcedure(kernel, continuous_inquiry())
        master._on_fhs(fhs(1, 10), 10)
        master.forget(BDAddr(1))
        assert not master.has_discovered(BDAddr(1))
        master._on_fhs(fhs(1, 300), 300)
        assert master.discovery_tick(BDAddr(1)) == 300

    def test_reset_clears_all(self, kernel):
        master = InquiryProcedure(kernel, continuous_inquiry())
        master._on_fhs(fhs(1, 10), 10)
        master.reset()
        assert master.discovered_count == 0

    def test_result_seconds_property(self, kernel):
        master = InquiryProcedure(kernel, continuous_inquiry())
        master._on_fhs(fhs(1, 3200), 3200)
        assert master.results[0].discovered_seconds == 1.0


class TestReceiverCapture:
    def test_second_overlapping_fhs_blocked(self, kernel):
        master = InquiryProcedure(kernel, continuous_inquiry())
        master._on_fhs(fhs(1, 100), 100)
        master._on_fhs(fhs(2, 101), 101)  # within the 2-tick FHS capture
        assert master.discovered_count == 1
        assert master.responses_blocked == 1

    def test_fhs_after_capture_window_received(self, kernel):
        master = InquiryProcedure(kernel, continuous_inquiry())
        master._on_fhs(fhs(1, 100), 100)
        master._on_fhs(fhs(2, 102), 102)  # capture ended
        assert master.discovered_count == 2

    def test_capture_disabled(self, kernel):
        master = InquiryProcedure(
            kernel, continuous_inquiry(), receiver_capture=False
        )
        master._on_fhs(fhs(1, 100), 100)
        master._on_fhs(fhs(2, 101), 101)
        assert master.discovered_count == 2
        assert master.responses_blocked == 0

    def test_blocked_device_can_retry_later(self, kernel):
        master = InquiryProcedure(kernel, continuous_inquiry())
        master._on_fhs(fhs(1, 100), 100)
        master._on_fhs(fhs(2, 101), 101)
        master._on_fhs(fhs(2, 200), 200)
        assert master.has_discovered(BDAddr(2))
        assert master.discovery_tick(BDAddr(2)) == 200
