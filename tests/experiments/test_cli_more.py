"""Remaining CLI subcommand coverage (fast parameterisations)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCLIMore:
    def test_figure2_subcommand(self, capsys):
        assert main(["figure2", "--replications", "2"]) == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "legend" in output

    def test_e2e_subcommand(self, capsys):
        assert main(["e2e", "--users", "2", "--duration", "150"]) == 0
        output = capsys.readouterr().out
        assert "tracking accuracy" in output

    def test_serving_subcommand(self, capsys):
        assert main(["serving"]) == 0
        output = capsys.readouterr().out
        assert "goodput" in output

    def test_plan_subcommand(self, capsys):
        assert main(["plan", "--layout", "wing:3"]) == 0
        output = capsys.readouterr().out
        assert "Deployment plan" in output

    def test_plan_unknown_layout_exits(self):
        with pytest.raises(SystemExit):
            main(["plan", "--layout", "spaceship"])

    def test_plan_layout_variants(self, capsys):
        for layout in ("academic", "multifloor:2"):
            assert main(["plan", "--layout", layout]) == 0
        assert "workstations" in capsys.readouterr().out
