"""Small-size tests for the policies and scalability experiments."""

from __future__ import annotations

import pytest

from repro.experiments.policies import (
    PolicyCase,
    PolicyComparisonConfig,
    run_policy_comparison,
)
from repro.experiments.scalability import ScalabilityConfig, run_scalability


class TestPolicyComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_policy_comparison(
            PolicyComparisonConfig(
                cases=(
                    PolicyCase("paper 3.84/15.4", 3.84, 15.4),
                    PolicyCase("split 1.92/7.7", 1.92, 7.7),
                ),
                seeds=(4242,),
                user_count=4,
                duration_seconds=400.0,
            )
        )

    def test_sub_dwell_window_hurts_accuracy(self, result):
        paper = result.outcome_for("paper 3.84/15.4")
        split = result.outcome_for("split 1.92/7.7")
        assert split.mean_accuracy < paper.mean_accuracy

    def test_load_computed(self, result):
        paper = result.outcome_for("paper 3.84/15.4")
        assert paper.case.load == pytest.approx(3.84 / 15.4)

    def test_render(self, result):
        text = result.render()
        assert "policy" in text and "accuracy" in text

    def test_unknown_policy(self, result):
        with pytest.raises(KeyError):
            result.outcome_for("nope")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PolicyComparisonConfig(cases=())
        with pytest.raises(ValueError):
            PolicyComparisonConfig(seeds=())


class TestScalabilityConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScalabilityConfig(room_counts=())
        with pytest.raises(ValueError):
            ScalabilityConfig(room_counts=(1,))
        with pytest.raises(ValueError):
            ScalabilityConfig(user_count=0)

    def test_point_properties(self):
        result = run_scalability(
            ScalabilityConfig(room_counts=(3,), user_count=2, duration_seconds=150.0)
        )
        point = result.point_for(3)
        assert point.events_per_room > 0
        assert point.updates_per_user_minute >= 0
