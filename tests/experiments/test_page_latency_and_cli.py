"""Small-size tests for the page-latency experiment and the CLI surface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.page_latency import PageLatencyConfig, run_page_latency


class TestPageLatencyExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_page_latency(
            PageLatencyConfig(
                samples_per_case=40, estimate_error_periods=(0.0, 8.5), seed=111
            )
        )

    def test_all_connect(self, result):
        for case in result.cases:
            assert case.timeouts == 0
            assert case.connected == 40

    def test_fresh_beats_stale(self, result):
        fresh = result.case_for(0.0)
        stale = result.case_for(8.5)
        assert fresh.latency.mean < stale.latency.mean
        assert fresh.wrong_train_fraction < stale.wrong_train_fraction

    def test_render(self, result):
        text = result.render()
        assert "clock-estimate error" in text and "0 periods" in text

    def test_unknown_case(self, result):
        with pytest.raises(KeyError):
            result.case_for(99.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PageLatencyConfig(samples_per_case=0)
        with pytest.raises(ValueError):
            PageLatencyConfig(timeout_seconds=0)


class TestCLI:
    def test_table1_subcommand(self, capsys):
        assert main(["table1", "--trials", "20"]) == 0
        output = capsys.readouterr().out
        assert "Starting Train" in output
        assert "Mixed" in output

    def test_pages_subcommand(self, capsys):
        assert main(["pages", "--samples", "10"]) == 0
        output = capsys.readouterr().out
        assert "clock-estimate error" in output

    def test_section5_subcommand(self, capsys):
        assert main(["section5", "--replications", "3"]) == 0
        output = capsys.readouterr().out
        assert "tracking load" in output

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
