"""Tests for the machine-readable experiment exports."""

from __future__ import annotations

from repro.experiments.figure2 import Figure2Config, run_figure2
from repro.experiments.table1 import Table1Config, run_table1


class TestTable1Csv:
    def test_header_and_rows(self):
        result = run_table1(Table1Config(trials=12, seed=321))
        lines = result.to_csv().splitlines()
        assert lines[0] == "trial,same_train,discovery_seconds"
        assert len(lines) == 13
        # Every data row parses.
        for line in lines[1:]:
            index, same, seconds = line.split(",")
            assert int(same) in (0, 1)
            assert float(seconds) > 0

    def test_csv_matches_summaries(self):
        result = run_table1(Table1Config(trials=20, seed=322))
        lines = result.to_csv().splitlines()[1:]
        same_values = [
            float(line.split(",")[2]) for line in lines if line.split(",")[1] == "1"
        ]
        assert len(same_values) == result.same_summary.count


class TestFigure2Csv:
    def test_grid_and_columns(self):
        result = run_figure2(
            Figure2Config(slave_counts=(2, 10), replications=4, seed=323)
        )
        lines = result.to_csv().splitlines()
        assert lines[0] == "time_seconds,p_discovered_n2,p_discovered_n10"
        assert len(lines) == len(result.config.time_grid()) + 1
        # Values are probabilities and monotone per column.
        previous = [0.0, 0.0]
        for line in lines[1:]:
            cells = line.split(",")
            values = [float(cells[1]), float(cells[2])]
            assert all(0.0 <= v <= 1.0 for v in values)
            assert values[0] >= previous[0] and values[1] >= previous[1]
            previous = values
