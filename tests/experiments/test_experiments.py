"""Tests for the paper-experiment harnesses (small sample sizes).

The statistical assertions here are deliberately loose — the benchmark
suite runs the full-size experiments; these tests pin the *structure*
(classification, rendering, determinism) and coarse magnitudes.
"""

from __future__ import annotations

import pytest

from repro.bluetooth.scan import PhaseMode, ResponseMode
from repro.experiments.duty_cycle import Section5Config, run_section5
from repro.experiments.e2e import E2EConfig, run_e2e
from repro.experiments.figure2 import Figure2Config, run_figure2
from repro.experiments.sweep import (
    sweep_inquiry_window,
    sweep_table1_scan_interleaving,
)
from repro.experiments.table1 import Table1Config, run_table1


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(Table1Config(trials=120, seed=555))

    def test_every_trial_discovers(self, result):
        assert result.undiscovered == 0

    def test_classification_roughly_balanced(self, result):
        same = result.same_summary.count
        different = result.different_summary.count
        assert same + different == 120
        # ~50/50 split: each side within a generous band.
        assert 35 <= same <= 85

    def test_shape_same_faster_than_different(self, result):
        assert result.same_summary.mean < result.different_summary.mean

    def test_different_minus_same_is_about_one_dwell(self, result):
        gap = result.different_summary.mean - result.same_summary.mean
        assert 1.8 <= gap <= 3.4  # 2.56 s ± tolerance

    def test_mixed_between_the_two(self, result):
        assert (
            result.same_summary.mean
            < result.mixed_summary.mean
            < result.different_summary.mean
        )

    def test_same_train_magnitude(self, result):
        # Paper: 1.60 s; allow a generous band around it.
        assert 1.0 <= result.same_summary.mean <= 2.6

    def test_deterministic_given_seed(self):
        a = run_table1(Table1Config(trials=30, seed=777))
        b = run_table1(Table1Config(trials=30, seed=777))
        assert [t.discovery_seconds for t in a.trials] == [
            t.discovery_seconds for t in b.trials
        ]

    def test_different_seed_differs(self):
        a = run_table1(Table1Config(trials=30, seed=777))
        b = run_table1(Table1Config(trials=30, seed=778))
        assert [t.discovery_seconds for t in a.trials] != [
            t.discovery_seconds for t in b.trials
        ]

    def test_render_contains_paper_comparison(self, result):
        text = result.render()
        assert "Same" in text and "Different" in text and "Mixed" in text
        assert "1.6028" in text  # the paper's reference value

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Table1Config(trials=0)
        with pytest.raises(ValueError):
            Table1Config(horizon_seconds=-1)


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure2(
            Figure2Config(slave_counts=(2, 10, 20), replications=15, seed=901)
        )

    def test_curves_monotone(self, result):
        grid = result.config.time_grid()
        for curve in result.curves:
            values = curve.cdf.sample_curve(grid)
            assert values == sorted(values)

    def test_more_slaves_slower_in_window_one(self, result):
        by_1s = {c.slave_count: c.probability_by(1.0) for c in result.curves}
        assert by_1s[2] > by_1s[20]

    def test_small_population_mostly_found_in_window_one(self, result):
        assert result.curve_for(2).probability_by(1.0) > 0.85

    def test_ten_slaves_window_one_band(self, result):
        # Paper: "about 90%"; accept a band given small replication count.
        p = result.curve_for(10).probability_by(1.0)
        assert 0.65 <= p <= 0.98

    def test_second_cycle_nearly_completes(self, result):
        assert result.curve_for(10).probability_by(6.0) > 0.9
        assert result.curve_for(20).probability_by(11.0) > 0.9

    def test_no_discovery_between_windows(self, result):
        # The master is serving (not inquiring) between 1 s and 5 s:
        # the curve must be flat there.
        curve = result.curve_for(20)
        assert curve.probability_by(4.9) == curve.probability_by(1.1)

    def test_collisions_grow_with_population(self, result):
        assert result.curve_for(20).collisions > result.curve_for(2).collisions

    def test_render(self, result):
        text = result.render()
        assert "Figure 2" in text and "legend" in text and "10" in text

    def test_unknown_curve_raises(self, result):
        with pytest.raises(KeyError):
            result.curve_for(99)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Figure2Config(slave_counts=())
        with pytest.raises(ValueError):
            Figure2Config(replications=0)
        with pytest.raises(ValueError):
            Figure2Config(inquiry_window_seconds=10.0, cycle_period_seconds=5.0)

    def test_time_grid(self):
        grid = Figure2Config(horizon_seconds=1.0, grid_step_seconds=0.5).time_grid()
        assert grid == [0.0, 0.5, 1.0]


class TestSection5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_section5(Section5Config(replications=25, seed=902))

    def test_crossing_time_matches_paper(self, result):
        assert round(result.crossing_seconds, 1) == 15.4

    def test_tracking_load_about_quarter(self, result):
        assert 0.22 <= result.tracking_load <= 0.27

    def test_discovery_fraction_band(self, result):
        # Paper claims ~95% analytically; the full contention model
        # lands in the high-80s. Accept the shape: clearly above the
        # single-train bound (~50%) and below 100%.
        assert 0.75 <= result.discovered_fraction <= 1.0

    def test_ci_contains_fraction(self, result):
        low, high = result.discovered_ci95
        assert low <= result.discovered_fraction <= high

    def test_render(self, result):
        text = result.render()
        assert "crossing" in text and "tracking load" in text


class TestSweeps:
    def test_interleaving_sweep_shows_faster_pure_scan(self):
        sweep = sweep_table1_scan_interleaving(trials=60)
        interleaved = sweep.row("inquiry+page scan (paper)")
        pure = sweep.row("inquiry scan only")
        # A slave that only inquiry-scans is discovered faster.
        assert pure.values[0] < interleaved.values[0]

    def test_window_sweep_monotone_in_coverage(self):
        sweep = sweep_inquiry_window(
            windows_seconds=(1.28, 3.84, 10.24), replications=10
        )
        fractions = [row.values[0] for row in sweep.rows]
        assert fractions[0] < fractions[1] <= fractions[2] + 0.05
        # One dwell + half covers far more than half a dwell.
        assert fractions[1] - fractions[0] > 0.2

    def test_sweep_render_and_lookup(self):
        sweep = sweep_inquiry_window(windows_seconds=(2.56,), replications=4)
        assert "2.56s" in sweep.render()
        with pytest.raises(KeyError):
            sweep.row("missing")


class TestE2E:
    def test_small_run_produces_sane_metrics(self):
        result = run_e2e(
            E2EConfig(user_count=3, hops_per_user=2, duration_seconds=240.0, seed=903)
        )
        assert result.report.mean_accuracy > 0.5
        assert result.presence_updates > 0
        assert result.queries_total == 3
        assert result.lan_dropped == 0
        text = result.render()
        assert "tracking accuracy" in text

    def test_config_validation(self):
        with pytest.raises(ValueError):
            E2EConfig(user_count=0)
        with pytest.raises(ValueError):
            E2EConfig(duration_seconds=0)
