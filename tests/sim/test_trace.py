"""Tests for the tracing facility."""

from __future__ import annotations

from repro.sim.trace import NullTracer, TraceRecord, Tracer


class TestTracer:
    def test_records_events(self):
        tracer = Tracer()
        tracer.record(10, "cat", "message")
        assert len(tracer) == 1
        assert tracer.records[0] == TraceRecord(10, "cat", "message")

    def test_category_filter(self):
        tracer = Tracer(categories=["keep"])
        tracer.record(1, "keep", "a")
        tracer.record(2, "drop", "b")
        assert [r.message for r in tracer.records] == ["a"]

    def test_by_category(self):
        tracer = Tracer()
        tracer.record(1, "a", "x")
        tracer.record(2, "b", "y")
        tracer.record(3, "a", "z")
        assert [r.message for r in tracer.by_category("a")] == ["x", "z"]

    def test_between(self):
        tracer = Tracer()
        for tick in (5, 10, 15):
            tracer.record(tick, "c", str(tick))
        assert [r.tick for r in tracer.between(10, 15)] == [10]

    def test_max_records_drops_overflow(self):
        tracer = Tracer(max_records=2)
        for tick in range(5):
            tracer.record(tick, "c", "m")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_sink_called(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        tracer.record(1, "c", "m")
        assert len(seen) == 1

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1, "c", "m")
        tracer.clear()
        assert len(tracer) == 0

    def test_record_seconds_property(self):
        record = TraceRecord(3200, "c", "m")
        assert record.seconds == 1.0
        assert "1.0" in record.format()

    def test_dump(self):
        tracer = Tracer()
        tracer.record(1, "cat", "hello")
        assert "hello" in tracer.dump()


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        tracer.record(1, "c", "m")
        assert len(tracer) == 0

    def test_not_enabled(self):
        assert not NullTracer().enabled
        assert Tracer().enabled
