"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim.errors import DeadlockError, SchedulingError
from repro.sim.kernel import Kernel
from repro.sim.trace import Tracer


class TestScheduling:
    def test_event_fires_at_scheduled_time(self, kernel):
        fired_at = []
        kernel.schedule_at(100, lambda: fired_at.append(kernel.now))
        kernel.run_until(200)
        assert fired_at == [100]

    def test_relative_schedule(self, kernel):
        kernel.run_until(50)
        fired_at = []
        kernel.schedule(25, lambda: fired_at.append(kernel.now))
        kernel.run_until(100)
        assert fired_at == [75]

    def test_same_tick_fires_in_insertion_order(self, kernel):
        order = []
        kernel.schedule_at(10, lambda: order.append("a"))
        kernel.schedule_at(10, lambda: order.append("b"))
        kernel.schedule_at(10, lambda: order.append("c"))
        kernel.run_until(10)
        assert order == ["a", "b", "c"]

    def test_events_fire_in_time_order_regardless_of_insertion(self, kernel):
        order = []
        kernel.schedule_at(30, lambda: order.append(30))
        kernel.schedule_at(10, lambda: order.append(10))
        kernel.schedule_at(20, lambda: order.append(20))
        kernel.run_until(100)
        assert order == [10, 20, 30]

    def test_scheduling_in_past_raises(self, kernel):
        kernel.run_until(100)
        with pytest.raises(SchedulingError):
            kernel.schedule_at(99, lambda: None)

    def test_negative_delay_raises(self, kernel):
        with pytest.raises(SchedulingError):
            kernel.schedule(-1, lambda: None)

    def test_scheduling_at_now_is_allowed(self, kernel):
        kernel.run_until(10)
        fired = []
        kernel.schedule_at(10, lambda: fired.append(True))
        kernel.run_until(10)
        assert fired == [True]

    def test_event_may_schedule_further_events(self, kernel):
        log = []

        def first():
            log.append("first")
            kernel.schedule(5, lambda: log.append("second"))

        kernel.schedule_at(10, first)
        kernel.run_until(20)
        assert log == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, kernel):
        fired = []
        handle = kernel.schedule_at(10, lambda: fired.append(True))
        handle.cancel()
        kernel.run_until(20)
        assert fired == []

    def test_cancel_is_idempotent(self, kernel):
        handle = kernel.schedule_at(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_property(self, kernel):
        handle = kernel.schedule_at(10, lambda: None)
        assert handle.pending
        handle.cancel()
        assert not handle.pending

    def test_fired_event_is_not_pending(self, kernel):
        handle = kernel.schedule_at(10, lambda: None)
        kernel.run_until(10)
        assert not handle.pending

    def test_pending_events_count_skips_cancelled(self, kernel):
        kernel.schedule_at(10, lambda: None)
        handle = kernel.schedule_at(20, lambda: None)
        handle.cancel()
        assert kernel.pending_events == 1


class TestRunUntil:
    def test_clock_reaches_target_even_with_empty_heap(self, kernel):
        kernel.run_until(500)
        assert kernel.now == 500

    def test_events_beyond_target_stay_queued(self, kernel):
        fired = []
        kernel.schedule_at(100, lambda: fired.append(True))
        kernel.run_until(50)
        assert fired == []
        kernel.run_until(150)
        assert fired == [True]

    def test_event_exactly_at_target_fires(self, kernel):
        fired = []
        kernel.schedule_at(100, lambda: fired.append(True))
        kernel.run_until(100)
        assert fired == [True]

    def test_run_until_backwards_raises(self, kernel):
        kernel.run_until(100)
        with pytest.raises(SchedulingError):
            kernel.run_until(50)

    def test_require_events_raises_on_drain(self, kernel):
        kernel.schedule_at(10, lambda: None)
        with pytest.raises(DeadlockError):
            kernel.run_until(1000, require_events=True)

    def test_run_until_seconds(self, kernel):
        kernel.run_until_seconds(1.0)
        assert kernel.now == 3200

    def test_step_returns_false_when_empty(self, kernel):
        assert kernel.step() is False

    def test_step_fires_one_event(self, kernel):
        fired = []
        kernel.schedule_at(5, lambda: fired.append(1))
        kernel.schedule_at(6, lambda: fired.append(2))
        assert kernel.step() is True
        assert fired == [1]

    def test_run_to_completion(self, kernel):
        fired = []
        kernel.schedule_at(5, lambda: fired.append(1))
        kernel.schedule_at(50, lambda: fired.append(2))
        kernel.run_to_completion()
        assert fired == [1, 2]
        assert kernel.now == 50

    def test_run_to_completion_detects_runaway(self, kernel):
        def reschedule():
            kernel.schedule(1, reschedule)

        kernel.schedule_at(0, reschedule)
        with pytest.raises(DeadlockError):
            kernel.run_to_completion(max_events=100)

    def test_events_fired_counter(self, kernel):
        for tick in range(5):
            kernel.schedule_at(tick, lambda: None)
        kernel.run_until(10)
        assert kernel.events_fired == 5


class TestTracing:
    def test_labelled_events_are_traced(self):
        tracer = Tracer()
        kernel = Kernel(tracer=tracer)
        kernel.schedule_at(10, lambda: None, label="hello")
        kernel.run_until(10)
        assert any(rec.message == "hello" for rec in tracer.records)

    def test_default_tracer_records_nothing(self, kernel):
        kernel.schedule_at(10, lambda: None, label="hello")
        kernel.run_until(10)
        assert len(kernel.tracer) == 0
