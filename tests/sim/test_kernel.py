"""Tests for the discrete-event kernel.

The ``kernel`` fixture (see ``conftest.py`` in this directory) is
parametrized over both schedulers, so everything here doubles as a
heap/calendar behavioural-equivalence check.
"""

from __future__ import annotations

import heapq

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sim.errors import DeadlockError, SchedulingError
from repro.sim.kernel import METRICS_FLUSH_INTERVAL, SCHEDULER_ENV_VAR, Kernel
from repro.sim.trace import Tracer


class TestScheduling:
    def test_event_fires_at_scheduled_time(self, kernel):
        fired_at = []
        kernel.schedule_at(100, lambda: fired_at.append(kernel.now))
        kernel.run_until(200)
        assert fired_at == [100]

    def test_relative_schedule(self, kernel):
        kernel.run_until(50)
        fired_at = []
        kernel.schedule(25, lambda: fired_at.append(kernel.now))
        kernel.run_until(100)
        assert fired_at == [75]

    def test_same_tick_fires_in_insertion_order(self, kernel):
        order = []
        kernel.schedule_at(10, lambda: order.append("a"))
        kernel.schedule_at(10, lambda: order.append("b"))
        kernel.schedule_at(10, lambda: order.append("c"))
        kernel.run_until(10)
        assert order == ["a", "b", "c"]

    def test_events_fire_in_time_order_regardless_of_insertion(self, kernel):
        order = []
        kernel.schedule_at(30, lambda: order.append(30))
        kernel.schedule_at(10, lambda: order.append(10))
        kernel.schedule_at(20, lambda: order.append(20))
        kernel.run_until(100)
        assert order == [10, 20, 30]

    def test_scheduling_in_past_raises(self, kernel):
        kernel.run_until(100)
        with pytest.raises(SchedulingError):
            kernel.schedule_at(99, lambda: None)

    def test_negative_delay_raises(self, kernel):
        with pytest.raises(SchedulingError):
            kernel.schedule(-1, lambda: None)

    def test_scheduling_at_now_is_allowed(self, kernel):
        kernel.run_until(10)
        fired = []
        kernel.schedule_at(10, lambda: fired.append(True))
        kernel.run_until(10)
        assert fired == [True]

    def test_event_may_schedule_further_events(self, kernel):
        log = []

        def first():
            log.append("first")
            kernel.schedule(5, lambda: log.append("second"))

        kernel.schedule_at(10, first)
        kernel.run_until(20)
        assert log == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, kernel):
        fired = []
        handle = kernel.schedule_at(10, lambda: fired.append(True))
        handle.cancel()
        kernel.run_until(20)
        assert fired == []

    def test_cancel_is_idempotent(self, kernel):
        handle = kernel.schedule_at(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_property(self, kernel):
        handle = kernel.schedule_at(10, lambda: None)
        assert handle.pending
        handle.cancel()
        assert not handle.pending

    def test_fired_event_is_not_pending(self, kernel):
        handle = kernel.schedule_at(10, lambda: None)
        kernel.run_until(10)
        assert not handle.pending

    def test_pending_events_count_skips_cancelled(self, kernel):
        kernel.schedule_at(10, lambda: None)
        handle = kernel.schedule_at(20, lambda: None)
        handle.cancel()
        assert kernel.pending_events == 1


class TestRunUntil:
    def test_clock_reaches_target_even_with_empty_heap(self, kernel):
        kernel.run_until(500)
        assert kernel.now == 500

    def test_events_beyond_target_stay_queued(self, kernel):
        fired = []
        kernel.schedule_at(100, lambda: fired.append(True))
        kernel.run_until(50)
        assert fired == []
        kernel.run_until(150)
        assert fired == [True]

    def test_event_exactly_at_target_fires(self, kernel):
        fired = []
        kernel.schedule_at(100, lambda: fired.append(True))
        kernel.run_until(100)
        assert fired == [True]

    def test_run_until_backwards_raises(self, kernel):
        kernel.run_until(100)
        with pytest.raises(SchedulingError):
            kernel.run_until(50)

    def test_require_events_raises_on_drain(self, kernel):
        kernel.schedule_at(10, lambda: None)
        with pytest.raises(DeadlockError):
            kernel.run_until(1000, require_events=True)

    def test_run_until_seconds(self, kernel):
        kernel.run_until_seconds(1.0)
        assert kernel.now == 3200

    def test_step_returns_false_when_empty(self, kernel):
        assert kernel.step() is False

    def test_step_fires_one_event(self, kernel):
        fired = []
        kernel.schedule_at(5, lambda: fired.append(1))
        kernel.schedule_at(6, lambda: fired.append(2))
        assert kernel.step() is True
        assert fired == [1]

    def test_run_to_completion(self, kernel):
        fired = []
        kernel.schedule_at(5, lambda: fired.append(1))
        kernel.schedule_at(50, lambda: fired.append(2))
        kernel.run_to_completion()
        assert fired == [1, 2]
        assert kernel.now == 50

    def test_run_to_completion_detects_runaway(self, kernel):
        def reschedule():
            kernel.schedule(1, reschedule)

        kernel.schedule_at(0, reschedule)
        with pytest.raises(DeadlockError):
            kernel.run_to_completion(max_events=100)

    def test_events_fired_counter(self, kernel):
        for tick in range(5):
            kernel.schedule_at(tick, lambda: None)
        kernel.run_until(10)
        assert kernel.events_fired == 5


class TestPostFastPath:
    """``post``/``post_at``: handle-free scheduling, same semantics."""

    def test_post_at_fires_at_scheduled_time(self, kernel):
        fired_at = []
        kernel.post_at(100, lambda: fired_at.append(kernel.now))
        kernel.run_until(200)
        assert fired_at == [100]

    def test_post_is_relative_to_now(self, kernel):
        kernel.run_until(50)
        fired_at = []
        kernel.post(25, lambda: fired_at.append(kernel.now))
        kernel.run_until(100)
        assert fired_at == [75]

    def test_post_at_in_past_raises(self, kernel):
        kernel.run_until(100)
        with pytest.raises(SchedulingError):
            kernel.post_at(99, lambda: None)

    def test_post_negative_delay_raises(self, kernel):
        with pytest.raises(SchedulingError):
            kernel.post(-1, lambda: None)

    def test_post_interleaves_with_schedule_in_seq_order(self, kernel):
        order = []
        kernel.schedule_at(10, lambda: order.append("a"))
        kernel.post_at(10, lambda: order.append("b"))
        kernel.schedule_at(10, lambda: order.append("c"))
        kernel.post_at(10, lambda: order.append("d"))
        kernel.run_until(10)
        assert order == ["a", "b", "c", "d"]

    def test_post_counts_toward_pending_and_fired(self, kernel):
        kernel.post_at(5, lambda: None)
        kernel.post(7, lambda: None)
        assert kernel.pending_events == 2
        kernel.run_until(10)
        assert kernel.pending_events == 0
        assert kernel.events_fired == 2

    def test_labelled_post_is_traced(self):
        tracer = Tracer()
        kernel = Kernel(tracer=tracer)
        kernel.post_at(10, lambda: None, label="posted")
        kernel.run_until(10)
        assert any(rec.message == "posted" for rec in tracer.records)

    def test_nested_post_from_callback(self, kernel):
        log = []

        def first():
            log.append(kernel.now)
            kernel.post(5, lambda: log.append(kernel.now))

        kernel.post_at(10, first)
        kernel.run_until(20)
        assert log == [10, 15]

    def test_same_tick_post_from_firing_callback(self, kernel):
        # A callback posting at the *current* tick must fire within the
        # same run, after the events already queued for that tick.
        order = []

        def first():
            order.append("first")
            kernel.post(0, lambda: order.append("nested"))

        kernel.post_at(10, first)
        kernel.post_at(10, lambda: order.append("second"))
        kernel.run_until(10)
        assert order == ["first", "second", "nested"]


class TestPendingCounterChurn:
    """``pending_events`` stays exact under schedule/cancel/fire churn."""

    def test_counter_tracks_naive_recount(self, kernel):
        # Deterministic churn: schedule, cancel some, fire some, then
        # compare against a model maintained the slow way.
        expected = 0
        handles = []
        for i in range(50):
            handles.append(kernel.schedule_at(i * 3, lambda: None))
            expected += 1
        for i in range(0, 50, 4):
            handles[i].cancel()
            expected -= 1
        assert kernel.pending_events == expected

        kernel.run_until(60)  # fires ticks 0..60 → positions 0..20
        fired = sum(
            1 for i, h in enumerate(handles) if i * 3 <= 60 and i % 4 != 0
        )
        expected -= fired
        assert kernel.pending_events == expected

        # Re-schedule on top of the partially drained queue.
        for i in range(10):
            handles.append(kernel.schedule(5 + i, lambda: None))
            expected += 1
        assert kernel.pending_events == expected
        kernel.run_until(1000)
        assert kernel.pending_events == 0

    def test_cancel_after_fire_does_not_underflow(self, kernel):
        handle = kernel.schedule_at(10, lambda: None)
        kernel.run_until(10)
        assert kernel.pending_events == 0
        handle.cancel()
        assert kernel.pending_events == 0

    def test_double_cancel_counts_once(self, kernel):
        keep = kernel.schedule_at(20, lambda: None)
        handle = kernel.schedule_at(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert kernel.pending_events == 1
        assert keep.pending

    def test_cancel_from_callback_mid_drain(self, kernel):
        # Cancelling a later same-tick event from inside a firing
        # callback must stop it firing and keep the count exact.
        fired = []
        victim = kernel.schedule_at(10, lambda: fired.append("victim"))

        def assassin():
            fired.append("assassin")
            victim.cancel()

        kernel.schedule_at(5, assassin)
        kernel.run_until(20)
        assert fired == ["assassin"]
        assert kernel.pending_events == 0

    def test_mass_cancellation_triggers_compaction(self, kernel):
        # Cancel enough to outnumber the live entries and exceed the
        # compaction floor; the survivors must be untouched.
        survivors = [kernel.schedule_at(500 + i, lambda: None) for i in range(20)]
        doomed = [kernel.schedule_at(100 + i, lambda: None) for i in range(120)]
        for handle in doomed:
            handle.cancel()
        assert kernel.pending_events == 20
        fired_before = kernel.events_fired
        kernel.run_until(1000)
        assert kernel.events_fired - fired_before == 20
        assert kernel.pending_events == 0
        assert all(not h.pending for h in survivors)


class TestRunUntilPeek:
    """``run_until`` never pops an event beyond the target tick."""

    def test_no_pop_when_head_is_beyond_target(self, kernel, monkeypatch):
        kernel.schedule_at(100, lambda: None)

        def forbidden_pop(_heap):
            raise AssertionError("run_until popped an event beyond the target")

        monkeypatch.setattr(heapq, "heappop", forbidden_pop)
        kernel.run_until(50)  # must peek, not pop
        assert kernel.now == 50
        assert kernel.pending_events == 1

    def test_deferred_event_fires_later_unchanged(self, kernel):
        fired_at = []
        kernel.schedule_at(100, lambda: fired_at.append(kernel.now))
        for target in (10, 50, 99):
            kernel.run_until(target)
            assert fired_at == []
        kernel.run_until(100)
        assert fired_at == [100]


class TestMetricsBatching:
    """Batched instruments are exact at run/step boundaries."""

    def test_counters_exact_after_crossing_flush_interval(self):
        registry = MetricsRegistry()
        kernel = Kernel(metrics=registry)
        total = METRICS_FLUSH_INTERVAL + 123
        fired = 0

        def chain():
            nonlocal fired
            fired += 1
            if fired < total:
                kernel.post(1, chain)

        kernel.post_at(0, chain)
        kernel.run_until(total + 1)
        assert fired == total
        assert kernel.events_fired == total
        assert registry.counter("sim.events_fired").value == total
        assert registry.gauge("sim.queue_depth").value == 0

    def test_queue_depth_gauge_tracks_pending(self):
        registry = MetricsRegistry()
        kernel = Kernel(metrics=registry)
        kernel.post_at(10, lambda: None)
        kernel.post_at(200, lambda: None)
        kernel.run_until(20)
        assert registry.gauge("sim.queue_depth").value == 1
        assert registry.counter("sim.events_fired").value == 1

    def test_step_flushes_metrics(self):
        registry = MetricsRegistry()
        kernel = Kernel(metrics=registry)
        kernel.post_at(5, lambda: None)
        assert kernel.step() is True
        assert registry.counter("sim.events_fired").value == 1


class TestSchedulerSelection:
    def test_unknown_scheduler_raises(self):
        with pytest.raises(ValueError):
            Kernel(scheduler="fifo")

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "calendar")
        assert Kernel().scheduler == "calendar"

    def test_explicit_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "calendar")
        assert Kernel(scheduler="heap").scheduler == "heap"

    def test_bad_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "fifo")
        with pytest.raises(ValueError):
            Kernel()


class TestTracing:
    def test_labelled_events_are_traced(self):
        tracer = Tracer()
        kernel = Kernel(tracer=tracer)
        kernel.schedule_at(10, lambda: None, label="hello")
        kernel.run_until(10)
        assert any(rec.message == "hello" for rec in tracer.records)

    def test_default_tracer_records_nothing(self, kernel):
        kernel.schedule_at(10, lambda: None, label="hello")
        kernel.run_until(10)
        assert len(kernel.tracer) == 0
