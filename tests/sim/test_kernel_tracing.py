"""The traced kernel drain and the batched-metrics exactness contract.

A kernel with a :class:`SpanTracer` attached takes a separate drain
loop (``_drain_spans``); these tests pin that it fires the exact same
events, in the same order, with the same clock and metrics as the
untraced hot loops — and that ``flush_metrics()`` makes the batched
instruments exact even mid-drain.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer
from repro.sim.kernel import METRICS_FLUSH_INTERVAL, SCHEDULERS, Kernel


def _workload(kernel, log):
    """Schedule a representative mix: labels, plain posts, a cancel."""
    for tick in (5, 3, 9):
        kernel.post_at(tick, lambda t=tick: log.append(("post", t, kernel.now)))
    handle = kernel.schedule_at(4, lambda: log.append(("label", 4, kernel.now)),
                                label="window")
    doomed = kernel.schedule_at(6, lambda: log.append(("doomed", 6, kernel.now)),
                                label="doomed")
    doomed.cancel()
    kernel.schedule_at(7, lambda: log.append(("label", 7, kernel.now)),
                       label="window")
    return handle


@pytest.fixture(params=SCHEDULERS)
def scheduler(request) -> str:
    return request.param


class TestTracedDrainEquivalence:
    def test_same_firing_order_and_clock_as_untraced(self, scheduler):
        plain_log, traced_log = [], []
        plain = Kernel(scheduler=scheduler)
        _workload(plain, plain_log)
        plain.run_until(50)
        traced = Kernel(scheduler=scheduler, spans=SpanTracer())
        _workload(traced, traced_log)
        traced.run_until(50)
        assert traced_log == plain_log
        assert traced.now == plain.now
        assert traced.events_fired == plain.events_fired

    def test_heap_and_calendar_trace_identical_spans(self):
        def spans_for(scheduler):
            tracer = SpanTracer()
            kernel = Kernel(scheduler=scheduler, spans=tracer)
            _workload(kernel, [])
            kernel.run_until(50)
            return tracer.records()

        heap, calendar = spans_for("heap"), spans_for("calendar")
        assert heap == calendar

    def test_labelled_events_become_kernel_spans(self, scheduler):
        tracer = SpanTracer()
        kernel = Kernel(scheduler=scheduler, spans=tracer)
        _workload(kernel, [])
        kernel.run_until(50)
        assert [(s.name, s.start_tick) for s in tracer.spans] == [
            ("window", 4),
            ("window", 7),
        ]
        # Event dispatch is instantaneous in sim time.
        assert all(span.duration_ticks == 0 for span in tracer.spans)

    def test_spans_opened_in_callbacks_nest_under_the_dispatch(self, scheduler):
        tracer = SpanTracer()
        kernel = Kernel(scheduler=scheduler, spans=tracer)

        def fire():
            tracer.instant("core.query", "core", kernel.now, ok=True)

        kernel.schedule_at(3, fire, label="serve")
        kernel.run_until(10)
        dispatch, child = tracer.spans
        assert dispatch.name == "serve"
        assert child.parent_id == dispatch.span_id

    def test_step_wraps_labelled_events_too(self, scheduler):
        tracer = SpanTracer()
        kernel = Kernel(scheduler=scheduler, spans=tracer)
        kernel.schedule_at(2, lambda: None, label="stepped")
        assert kernel.step() is True
        assert [span.name for span in tracer.spans] == ["stepped"]

    def test_traced_metrics_match_untraced(self, scheduler):
        def jsonl(spans):
            registry = MetricsRegistry()
            kernel = Kernel(scheduler=scheduler, metrics=registry, spans=spans)
            _workload(kernel, [])
            kernel.run_until(50)
            return registry.to_jsonl()

        assert jsonl(None) == jsonl(SpanTracer())


class TestMetricsExactness:
    # Counts straddling the 4096-event flush batch, exact at boundaries.
    COUNT = METRICS_FLUSH_INTERVAL + 1000

    def _counter(self, registry):
        return registry.counter("sim.events_fired")

    def test_exact_at_run_until_boundary(self, scheduler):
        registry = MetricsRegistry()
        kernel = Kernel(scheduler=scheduler, metrics=registry)
        for tick in range(self.COUNT):
            kernel.post_at(tick, lambda: None)
        kernel.run_until(self.COUNT)
        assert self._counter(registry).value == self.COUNT
        assert registry.gauge("sim.queue_depth").value == 0

    def test_exact_at_partial_run_boundary(self, scheduler):
        registry = MetricsRegistry()
        kernel = Kernel(scheduler=scheduler, metrics=registry)
        for tick in range(self.COUNT):
            kernel.post_at(tick, lambda: None)
        half = self.COUNT // 2
        kernel.run_until(half)
        assert self._counter(registry).value == half + 1  # ticks 0..half fire
        kernel.run_until(self.COUNT)
        assert self._counter(registry).value == self.COUNT

    def test_flush_metrics_is_exact_inside_run_to_completion(self, scheduler):
        # run_to_completion accounts per event, so a mid-run flush
        # publishes the exact count (the registry itself lags until then).
        registry = MetricsRegistry()
        kernel = Kernel(scheduler=scheduler, metrics=registry)
        counter = self._counter(registry)
        observed = {}

        def probe():
            observed["stale"] = counter.value
            kernel.flush_metrics()
            observed["flushed"] = counter.value

        probe_at = 3000
        for tick in range(probe_at):
            kernel.post_at(tick, lambda: None)
        kernel.post_at(probe_at, probe)
        kernel.run_to_completion()
        assert observed["stale"] < observed["flushed"]
        assert observed["flushed"] == probe_at + 1  # ticks 0..probe_at-1 + probe

    def test_mid_run_until_reads_lag_at_most_one_batch(self, scheduler):
        # Inside a run_until drain the batch accumulator is loop-local:
        # a flushed read may lag, but never by a full flush interval,
        # and the boundary read is exact again (the documented window).
        registry = MetricsRegistry()
        kernel = Kernel(scheduler=scheduler, metrics=registry)
        counter = self._counter(registry)
        observed = {}

        def probe():
            kernel.flush_metrics()
            observed["flushed"] = counter.value

        probe_at = METRICS_FLUSH_INTERVAL + 500  # one auto-flush behind us
        for tick in range(self.COUNT):
            kernel.post_at(tick, lambda: None)
        kernel.post_at(probe_at, probe)
        kernel.run_until(self.COUNT)
        exact_at_probe = probe_at + 2  # ticks 0..probe_at, plus the probe
        assert observed["flushed"] <= exact_at_probe
        assert exact_at_probe - observed["flushed"] < METRICS_FLUSH_INTERVAL
        assert counter.value == self.COUNT + 1  # boundary: exact again

    def test_exact_under_tracing_too(self, scheduler):
        registry = MetricsRegistry()
        kernel = Kernel(scheduler=scheduler, metrics=registry, spans=SpanTracer())
        for tick in range(self.COUNT):
            kernel.post_at(tick, lambda: None)
        kernel.run_until(self.COUNT)
        assert self._counter(registry).value == self.COUNT

    def test_step_keeps_the_counter_exact(self, scheduler):
        registry = MetricsRegistry()
        kernel = Kernel(scheduler=scheduler, metrics=registry)
        for tick in range(5):
            kernel.post_at(tick, lambda: None)
        fired = 0
        while kernel.step():
            fired += 1
            assert self._counter(registry).value == fired
        assert fired == 5
