"""Object vs batched engine: byte-identical observable behaviour.

ISSUE 9's acceptance bar, mirroring the scheduler-equivalence suite:
flipping ``BIPS_SIM_ENGINE`` changes *nothing* an experiment can
observe — result payloads, CSV output, domain metrics, tracking
reports — whether run serial or parallel, on either kernel scheduler,
with faults injected or not.  Only engine-internal ``sim.*`` telemetry
(event counts, batch counters) may differ, by design.
"""

from __future__ import annotations

import pytest

from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation
from repro.experiments.figure2 import Figure2Config, run_figure2
from repro.experiments.table1 import Table1Config, run_table1
from repro.obs.metrics import MetricsRegistry
from repro.runner.executor import ExperimentRunner
from repro.sim.batch import ENGINE_ENV_VAR
from repro.sim.kernel import SCHEDULER_ENV_VAR

TABLE1 = Table1Config(trials=8, seed=1313)
FIGURE2 = Figure2Config(slave_counts=(3,), replications=2, seed=1414)


def _domain_metrics(registry: MetricsRegistry) -> list[dict]:
    """Registry snapshot minus engine-internal ``sim.*`` telemetry."""
    return [
        record
        for record in registry.snapshot()
        if not str(record.get("name", "")).startswith("sim.")
    ]


class TestExperimentEquivalence:
    """Whole experiments, engine picked via the environment knob."""

    def test_table1_identical(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "object")
        object_csv = run_table1(TABLE1).to_csv()
        monkeypatch.setenv(ENGINE_ENV_VAR, "batched")
        batched_csv = run_table1(TABLE1).to_csv()
        assert object_csv == batched_csv

    def test_figure2_identical(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "object")
        object_csv = run_figure2(FIGURE2).to_csv()
        monkeypatch.setenv(ENGINE_ENV_VAR, "batched")
        batched_csv = run_figure2(FIGURE2).to_csv()
        assert object_csv == batched_csv

    def test_table1_domain_metrics_identical(self, monkeypatch):
        snapshots = []
        for engine in ("object", "batched"):
            monkeypatch.setenv(ENGINE_ENV_VAR, engine)
            registry = MetricsRegistry()
            run_table1(TABLE1, metrics=registry)
            snapshots.append(_domain_metrics(registry))
        assert snapshots[0] == snapshots[1]

    def test_table1_under_chaos_faults_identical(self, monkeypatch):
        config = Table1Config(trials=8, seed=1313, faults="chaos", fault_seed=7)
        monkeypatch.setenv(ENGINE_ENV_VAR, "object")
        object_csv = run_table1(config).to_csv()
        monkeypatch.setenv(ENGINE_ENV_VAR, "batched")
        batched_csv = run_table1(config).to_csv()
        assert object_csv == batched_csv

    def test_batched_serial_vs_jobs_identical(self, monkeypatch):
        # Workers inherit the environment, so --jobs runs flip with it.
        monkeypatch.setenv(ENGINE_ENV_VAR, "batched")
        serial_csv = run_table1(TABLE1, runner=ExperimentRunner()).to_csv()
        parallel_csv = run_table1(TABLE1, runner=ExperimentRunner(jobs=2)).to_csv()
        assert serial_csv == parallel_csv

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_batched_same_on_both_schedulers(self, monkeypatch, scheduler):
        # The engine knob composes with the scheduler knob: the batched
        # result equals the object result under either queue.
        monkeypatch.setenv(SCHEDULER_ENV_VAR, scheduler)
        monkeypatch.setenv(ENGINE_ENV_VAR, "object")
        object_csv = run_figure2(FIGURE2).to_csv()
        monkeypatch.setenv(ENGINE_ENV_VAR, "batched")
        batched_csv = run_figure2(FIGURE2).to_csv()
        assert object_csv == batched_csv


class TestFacadeEquivalence:
    """The end-to-end BIPS simulation on either engine."""

    @staticmethod
    def _run(engine: str) -> tuple[str, list[dict]]:
        sim = BIPSSimulation(
            config=BIPSConfig(seed=77, coverage_overlap_fraction=0.2), engine=engine
        )
        rooms = sim.plan.room_ids()
        for index in range(3):
            userid = f"user-{index}"
            sim.add_user(userid, f"User {index}")
            sim.login(userid)
            sim.walk(userid, start_room=rooms[index % len(rooms)], hops=3)
        sim.run(until_seconds=90)
        return sim.tracking_report().describe(), _domain_metrics(sim.metrics)

    def test_tracking_report_and_metrics_identical(self):
        object_run = self._run("object")
        batched_run = self._run("batched")
        assert object_run[0] == batched_run[0]
        assert object_run[1] == batched_run[1]

    def test_engine_attribute_resolved(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "batched")
        assert BIPSSimulation().engine == "batched"
        assert BIPSSimulation(engine="object").engine == "object"

    def test_batched_emits_batch_telemetry(self):
        sim = BIPSSimulation(config=BIPSConfig(seed=11), engine="batched")
        sim.add_user("u", "U")
        sim.login("u")
        sim.walk("u", start_room=sim.plan.room_ids()[0], hops=2)
        sim.run(until_seconds=60)
        names = {record["name"] for record in sim.metrics.snapshot()}
        assert "sim.batch.advances" in names
        assert "sim.batch.slave_steps" in names
