"""Sim-layer fixtures.

The ``kernel`` fixture here overrides the repo-root one so every
kernel/process test in this directory runs against **both** scheduler
implementations — the heap and calendar queues must be behaviourally
indistinguishable, not just fast.
"""

from __future__ import annotations

import pytest

from repro.sim.kernel import SCHEDULERS, Kernel


@pytest.fixture(params=SCHEDULERS)
def kernel(request) -> Kernel:
    """A fresh kernel, parametrized over every scheduler."""
    return Kernel(scheduler=request.param)
