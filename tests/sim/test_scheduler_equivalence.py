"""Heap vs calendar scheduler: byte-identical observable behaviour.

The calendar queue is a pure performance substitution — ISSUE 4's
acceptance bar is that switching schedulers changes *nothing* an
experiment can observe: trace output, firing order, counters, and
whole-experiment result payloads must match byte for byte.
"""

from __future__ import annotations

from repro.experiments.figure2 import Figure2Config, run_figure2
from repro.experiments.table1 import Table1Config, run_table1
from repro.sim.kernel import SCHEDULER_ENV_VAR, SCHEDULERS, Kernel
from repro.sim.trace import Tracer


def _mixed_workload(kernel: Kernel) -> list[tuple[int, int]]:
    """A deterministic schedule/post/cancel/nested-event churn.

    Uses a private LCG (not ``random``) so both kernels consume an
    identical decision stream; any divergence in firing order would
    desynchronise the streams and cascade into different traces.
    """
    log: list[tuple[int, int]] = []
    state = 987654321

    def rnd(bound: int) -> int:
        nonlocal state
        state = (state * 1103515245 + 12345) % (1 << 31)
        return state % bound

    handles = []

    def make_callback(ident: int):
        def callback() -> None:
            log.append((kernel.now, ident))
            if rnd(4) == 0:
                kernel.post(
                    rnd(7), make_callback(1000 + ident), label=f"nested:{ident}"
                )
            if handles and rnd(3) == 0:
                handles.pop(rnd(len(handles))).cancel()

        return callback

    for ident in range(150):
        tick = rnd(400)
        if rnd(2):
            handles.append(
                kernel.schedule_at(tick, make_callback(ident), label=f"evt:{ident}")
            )
        else:
            kernel.post_at(tick, make_callback(ident), label=f"evt:{ident}")
    kernel.run_until(500)
    return log


class TestTraceEquivalence:
    def test_mixed_workload_traces_byte_identical(self):
        dumps = []
        orders = []
        counters = []
        for scheduler in SCHEDULERS:
            tracer = Tracer()
            kernel = Kernel(tracer=tracer, scheduler=scheduler)
            orders.append(_mixed_workload(kernel))
            dumps.append(tracer.dump())
            counters.append((kernel.events_fired, kernel.pending_events))
        assert dumps[0] == dumps[1]
        assert orders[0] == orders[1]
        assert counters[0] == counters[1]

    def test_step_interleaving_matches(self):
        # Single-stepping must visit events in the same order too; the
        # calendar kernel resumes mid-bucket across step() calls.
        orders = []
        for scheduler in SCHEDULERS:
            kernel = Kernel(scheduler=scheduler)
            order: list[tuple[int, str]] = []
            for ident in ("a", "b", "c"):
                kernel.schedule_at(10, lambda i=ident: order.append((kernel.now, i)))
            kernel.schedule_at(5, lambda: order.append((kernel.now, "early")))
            kernel.schedule_at(20, lambda: order.append((kernel.now, "late")))
            while kernel.step():
                pass
            orders.append(order)
        assert orders[0] == orders[1]
        assert orders[0] == [
            (5, "early"),
            (10, "a"),
            (10, "b"),
            (10, "c"),
            (20, "late"),
        ]


class TestExperimentEquivalence:
    """Whole experiments, scheduler picked via the environment knob."""

    def test_table1_small_grid_identical(self, monkeypatch):
        config = Table1Config(trials=8, seed=1313)
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "heap")
        heap_csv = run_table1(config).to_csv()
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "calendar")
        calendar_csv = run_table1(config).to_csv()
        assert heap_csv == calendar_csv

    def test_figure2_small_grid_identical(self, monkeypatch):
        config = Figure2Config(slave_counts=(3,), replications=2, seed=1414)
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "heap")
        heap_csv = run_figure2(config).to_csv()
        monkeypatch.setenv(SCHEDULER_ENV_VAR, "calendar")
        calendar_csv = run_figure2(config).to_csv()
        assert heap_csv == calendar_csv
