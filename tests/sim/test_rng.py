"""Tests for seeded random streams."""

from __future__ import annotations

from repro.sim.rng import RandomStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_different_names_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_structure_matters(self):
        assert derive_seed(42, "ab", "c") != derive_seed(42, "a", "bc")


class TestRandomStream:
    def test_same_seed_same_sequence(self):
        a = RandomStream(7, "x")
        b = RandomStream(7, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_children_are_independent_of_parent_draws(self):
        a = RandomStream(7, "x")
        a_child_first = a.child("c").random()
        b = RandomStream(7, "x")
        for _ in range(100):
            b.random()  # drawing from the parent...
        assert b.child("c").random() == a_child_first  # ...does not move the child

    def test_sibling_children_differ(self):
        root = RandomStream(7)
        assert root.child("a").random() != root.child("b").random()

    def test_randint_bounds(self):
        stream = RandomStream(1)
        values = [stream.randint(3, 5) for _ in range(200)]
        assert set(values) <= {3, 4, 5}
        assert {3, 5} <= set(values)

    def test_uniform_bounds(self):
        stream = RandomStream(2)
        values = [stream.uniform(1.0, 2.0) for _ in range(100)]
        assert all(1.0 <= v <= 2.0 for v in values)

    def test_backoff_slots_range(self):
        stream = RandomStream(3)
        values = [stream.backoff_slots() for _ in range(2000)]
        assert min(values) >= 0
        assert max(values) <= 1023
        # Uniform over 0..1023 should hit both tails in 2000 draws.
        assert min(values) < 64
        assert max(values) > 960

    def test_choice_and_sample(self):
        stream = RandomStream(4)
        items = ["a", "b", "c"]
        assert stream.choice(items) in items
        assert sorted(stream.sample(items, 2))[0] in items

    def test_permutation_is_a_permutation(self):
        stream = RandomStream(5)
        perm = stream.permutation(16)
        assert sorted(perm) == list(range(16))

    def test_shuffle_in_place(self):
        stream = RandomStream(6)
        items = list(range(50))
        stream.shuffle(items)
        assert sorted(items) == list(range(50))

    def test_name_tracks_path(self):
        stream = RandomStream(7, "exp").child("slave", "3")
        assert stream.name == "exp/slave/3"

    def test_iter_uniform(self):
        stream = RandomStream(8)
        iterator = stream.iter_uniform(0.0, 1.0)
        values = [next(iterator) for _ in range(5)]
        assert all(0.0 <= v < 1.0 or v == 1.0 for v in values)
