"""Tests for the struct-of-arrays batch store and engine selection."""

from __future__ import annotations

import pytest

from repro.sim.batch import ENGINE_ENV_VAR, ENGINES, BatchStore, resolve_engine


class TestResolveEngine:
    def test_default_is_object(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine() == "object"

    def test_explicit_choice_wins(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "batched")
        assert resolve_engine("object") == "object"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "batched")
        assert resolve_engine() == "batched"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("vectorized")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "typo")
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine()

    def test_engine_names(self):
        assert ENGINES == ("object", "batched")


class TestColumns:
    def test_add_row_defaults_and_order(self):
        store = BatchStore("clock", "phase", "state")
        assert store.column_names == ("clock", "phase", "state")
        row = store.add_row(clock=7, state=-1)
        assert row == 0
        assert store.size == 1
        assert store.row(0) == {"clock": 7, "phase": 0, "state": -1}

    def test_rows_get_consecutive_indices(self):
        store = BatchStore("x")
        assert [store.add_row(x=i) for i in range(5)] == [0, 1, 2, 3, 4]
        assert store.size == 5

    def test_column_is_live(self):
        store = BatchStore("x")
        store.add_row(x=1)
        column = store.column("x")
        column[0] = 42
        assert store.row(0) == {"x": 42}

    def test_view_is_readonly_buffer(self):
        store = BatchStore("x")
        store.add_row(x=9)
        view = store.view("x")
        assert view[0] == 9
        with pytest.raises(TypeError):
            view[0] = 1

    def test_unknown_column_rejected(self):
        store = BatchStore("x")
        with pytest.raises(KeyError):
            store.add_row(y=1)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            BatchStore("x", "x")

    def test_empty_store_rejected(self):
        with pytest.raises(ValueError):
            BatchStore()

    def test_row_bounds_checked(self):
        store = BatchStore("x")
        with pytest.raises(IndexError):
            store.row(0)

    def test_columns_hold_64_bit_values(self):
        store = BatchStore("x")
        store.add_row(x=(1 << 62) + 3)
        assert store.row(0) == {"x": (1 << 62) + 3}


class TestDueIndex:
    def test_first_push_opens_bucket(self):
        store = BatchStore("x")
        assert store.push_due(100, 0) is True
        assert store.push_due(100, 1) is False
        assert store.due_count(100) == 2
        assert store.pending_ticks == 1

    def test_advance_returns_fifo_order(self):
        store = BatchStore("x")
        store.push_due(100, 3)
        store.push_due(100, 1)
        store.push_due(100, 2)
        assert list(store.advance(100)) == [3, 1, 2]

    def test_advance_clears_bucket(self):
        store = BatchStore("x")
        store.push_due(100, 0)
        store.advance(100)
        assert store.due_count(100) == 0
        assert store.pending_ticks == 0
        assert list(store.advance(100)) == []

    def test_advance_on_empty_tick(self):
        store = BatchStore("x")
        assert list(store.advance(55)) == []

    def test_same_tick_push_during_processing_opens_fresh_bucket(self):
        # The mechanism behind object-engine same-tick continuations:
        # pushes made while a bucket is processed must re-signal.
        store = BatchStore("x")
        store.push_due(100, 0)
        store.advance(100)
        assert store.push_due(100, 1) is True
        assert list(store.advance(100)) == [1]

    def test_distinct_ticks_are_independent(self):
        store = BatchStore("x")
        store.push_due(10, 0)
        store.push_due(20, 1)
        assert store.pending_ticks == 2
        assert list(store.advance(20)) == [1]
        assert list(store.advance(10)) == [0]
