"""Tests for generator-based processes and signals."""

from __future__ import annotations

import pytest

from repro.sim.errors import ProcessError, SchedulingError
from repro.sim.process import Process, Signal


class TestProcessBasics:
    def test_body_runs_at_start(self, kernel):
        log = []

        def body():
            log.append(kernel.now)
            yield 10
            log.append(kernel.now)

        Process(kernel, body(), name="p")
        kernel.run_until(100)
        assert log == [0, 10]

    def test_multiple_sleeps(self, kernel):
        log = []

        def body():
            for _ in range(3):
                yield 5
                log.append(kernel.now)

        Process(kernel, body())
        kernel.run_until(100)
        assert log == [5, 10, 15]

    def test_result_captured(self, kernel):
        def body():
            yield 1
            return "done"

        process = Process(kernel, body())
        kernel.run_until(10)
        assert process.finished
        assert process.result == "done"

    def test_zero_delay_yield(self, kernel):
        log = []

        def body():
            yield 0
            log.append(kernel.now)

        Process(kernel, body())
        kernel.run_until(0)
        assert log == [0]

    def test_negative_delay_raises(self, kernel):
        def body():
            yield -5

        Process(kernel, body())
        with pytest.raises(SchedulingError):
            kernel.run_until(10)

    def test_yielding_garbage_raises(self, kernel):
        def body():
            yield "soon"

        Process(kernel, body())
        with pytest.raises(SchedulingError):
            kernel.run_until(10)

    def test_yielding_bool_raises(self, kernel):
        def body():
            yield True

        Process(kernel, body())
        with pytest.raises(SchedulingError):
            kernel.run_until(10)

    def test_exception_wrapped_in_process_error(self, kernel):
        def body():
            yield 1
            raise RuntimeError("boom")

        process = Process(kernel, body(), name="bad")
        with pytest.raises(ProcessError) as excinfo:
            kernel.run_until(10)
        assert excinfo.value.process_name == "bad"
        assert isinstance(process.failed, RuntimeError)


class TestCancel:
    def test_cancel_stops_process(self, kernel):
        log = []

        def body():
            while True:
                yield 10
                log.append(kernel.now)

        process = Process(kernel, body())
        kernel.run_until(25)
        process.cancel()
        kernel.run_until(100)
        assert log == [10, 20]
        assert not process.alive

    def test_cancel_runs_finally_blocks(self, kernel):
        cleaned = []

        def body():
            try:
                yield 100
            finally:
                cleaned.append(True)

        process = Process(kernel, body())
        kernel.run_until(10)
        process.cancel()
        assert cleaned == [True]

    def test_cancel_finished_process_is_noop(self, kernel):
        def body():
            yield 1

        process = Process(kernel, body())
        kernel.run_until(10)
        process.cancel()
        assert process.finished


class TestSignal:
    def test_fire_wakes_waiter(self, kernel):
        signal = Signal(kernel, "s")
        got = []

        def waiter():
            value = yield signal
            got.append(value)

        Process(kernel, waiter())
        kernel.run_until(5)
        assert signal.waiter_count == 1
        signal.fire("hello")
        kernel.run_until(10)
        assert got == ["hello"]

    def test_fire_wakes_all_waiters(self, kernel):
        signal = Signal(kernel, "s")
        got = []

        def waiter(tag):
            yield signal
            got.append(tag)

        Process(kernel, waiter("a"))
        Process(kernel, waiter("b"))
        kernel.run_until(1)
        assert signal.fire() == 2
        kernel.run_until(2)
        assert sorted(got) == ["a", "b"]

    def test_signal_is_reusable(self, kernel):
        signal = Signal(kernel, "s")
        got = []

        def waiter():
            while True:
                value = yield signal
                got.append(value)

        Process(kernel, waiter())
        kernel.run_until(1)
        signal.fire(1)
        kernel.run_until(2)
        signal.fire(2)
        kernel.run_until(3)
        assert got == [1, 2]

    def test_late_waiter_blocks_until_next_fire(self, kernel):
        signal = Signal(kernel, "s")
        signal.fire("early")  # nobody waiting
        got = []

        def waiter():
            value = yield signal
            got.append(value)

        Process(kernel, waiter())
        kernel.run_until(5)
        assert got == []  # missed the early fire
        signal.fire("late")
        kernel.run_until(6)
        assert got == ["late"]

    def test_cancelled_waiter_not_woken(self, kernel):
        signal = Signal(kernel, "s")
        got = []

        def waiter():
            value = yield signal
            got.append(value)

        process = Process(kernel, waiter())
        kernel.run_until(1)
        process.cancel()
        signal.fire("x")
        kernel.run_until(2)
        assert got == []
        assert signal.waiter_count == 0


class TestDutyCycleShape:
    def test_paper_duty_cycle_as_process(self, kernel):
        """The §5 master cycle written as a process behaves correctly."""
        from repro.sim.clock import ticks_from_seconds

        phases = []

        def duty_cycle():
            while True:
                phases.append(("inquiry", kernel.now))
                yield ticks_from_seconds(3.84)
                phases.append(("serving", kernel.now))
                yield ticks_from_seconds(11.56)

        Process(kernel, duty_cycle())
        kernel.run_until(ticks_from_seconds(15.4 * 2))
        assert phases[0] == ("inquiry", 0)
        assert phases[1] == ("serving", ticks_from_seconds(3.84))
        assert phases[2][0] == "inquiry"
        # A complete cycle is 15.4 s.
        assert phases[2][1] == ticks_from_seconds(3.84) + ticks_from_seconds(11.56)
