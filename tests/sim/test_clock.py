"""Tests for tick/second arithmetic and the simulated clock."""

from __future__ import annotations

import pytest

from repro.sim.clock import (
    TICK_MICROSECONDS,
    TICKS_PER_SECOND,
    TICKS_PER_SLOT,
    SimClock,
    milliseconds_from_ticks,
    seconds_from_ticks,
    slots_from_ticks,
    ticks_from_milliseconds,
    ticks_from_seconds,
    ticks_from_slots,
)


class TestConversions:
    def test_ticks_per_second_is_native_clock_rate(self):
        # The Bluetooth native clock runs at 3.2 kHz (312.5 µs period).
        assert TICKS_PER_SECOND == 3200
        assert TICK_MICROSECONDS == 312.5

    def test_one_second_roundtrip(self):
        assert ticks_from_seconds(1.0) == 3200
        assert seconds_from_ticks(3200) == 1.0

    def test_scan_interval_is_4096_ticks(self):
        assert ticks_from_seconds(1.28) == 4096

    def test_scan_window_is_36_ticks(self):
        assert ticks_from_milliseconds(11.25) == 36

    def test_train_dwell_is_8192_ticks(self):
        # 256 train passes of 10 ms = 2.56 s = 4096 slots = 8192 ticks.
        assert ticks_from_seconds(2.56) == 8192

    def test_milliseconds_roundtrip(self):
        assert milliseconds_from_ticks(ticks_from_milliseconds(10.0)) == 10.0

    def test_slot_conversions(self):
        assert ticks_from_slots(1) == TICKS_PER_SLOT == 2
        assert slots_from_ticks(5) == 2  # truncates

    def test_rounding_to_nearest_tick(self):
        # 100 µs is less than half a tick -> rounds to 0.
        assert ticks_from_seconds(0.0001) == 0
        # 200 µs rounds up to one tick.
        assert ticks_from_seconds(0.0002) == 1


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_custom_start(self):
        assert SimClock(start=100).now == 100

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1)

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(50)
        assert clock.now == 50

    def test_advance_to_same_tick_is_noop(self):
        clock = SimClock(start=10)
        clock.advance_to(10)
        assert clock.now == 10

    def test_cannot_move_backwards(self):
        clock = SimClock(start=10)
        with pytest.raises(ValueError):
            clock.advance_to(9)

    def test_now_seconds(self):
        clock = SimClock(start=3200)
        assert clock.now_seconds == 1.0

    def test_repr_mentions_time(self):
        assert "3200" in repr(SimClock(start=3200))
