"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStream


@pytest.fixture
def kernel() -> Kernel:
    """A fresh simulation kernel."""
    return Kernel()


@pytest.fixture
def rng() -> RandomStream:
    """A deterministic root random stream."""
    return RandomStream(424242, "tests")
