"""Tests for pedestrian speeds and residence-time calculations."""

from __future__ import annotations

import math

import pytest

from repro.mobility.residence import (
    crossing_time_seconds,
    estimate_residence_time,
    mean_chord_length,
    tracking_load_fraction,
)
from repro.mobility.speeds import (
    MAX_TRACKED_SPEED_MPS,
    MEAN_WALKING_SPEED_MPS,
    PedestrianSpeedModel,
)
from repro.sim.rng import RandomStream


class TestSpeedModel:
    def test_default_mean_matches_paper(self):
        # The §5 sizing divides by 1.3 m/s.
        assert math.isclose(PedestrianSpeedModel().mean_walking_speed_mps, 1.3)
        assert MEAN_WALKING_SPEED_MPS == 1.3

    def test_draws_within_band(self):
        model = PedestrianSpeedModel()
        rng = RandomStream(1, "speeds")
        for _ in range(200):
            speed = model.draw_walking_speed(rng)
            assert 1.1 <= speed <= 1.5

    def test_stationary_probability(self):
        model = PedestrianSpeedModel(stationary_probability=1.0)
        rng = RandomStream(2, "speeds")
        assert model.draw_speed(rng) == 0.0

    def test_walking_speed_never_zero(self):
        model = PedestrianSpeedModel(stationary_probability=1.0)
        rng = RandomStream(3, "speeds")
        assert model.draw_walking_speed(rng) > 0.0

    def test_band_validation(self):
        with pytest.raises(ValueError):
            PedestrianSpeedModel(walk_low_mps=2.0, walk_high_mps=1.0)
        with pytest.raises(ValueError):
            PedestrianSpeedModel(walk_high_mps=MAX_TRACKED_SPEED_MPS + 1)
        with pytest.raises(ValueError):
            PedestrianSpeedModel(stationary_probability=1.5)


class TestCrossingTime:
    def test_paper_value(self):
        # §5: "20m : 1.3m/s" -> 15.4 s.
        assert math.isclose(crossing_time_seconds(), 20.0 / 1.3)
        assert round(crossing_time_seconds(), 1) == 15.4

    def test_scales_with_parameters(self):
        assert crossing_time_seconds(10.0, 1.0) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            crossing_time_seconds(diameter_m=0)
        with pytest.raises(ValueError):
            crossing_time_seconds(speed_mps=0)


class TestTrackingLoad:
    def test_paper_value(self):
        # §5: "about 24% of the operational cycle".
        load = tracking_load_fraction(3.84, 15.4)
        assert 0.24 <= load <= 0.26

    def test_validation(self):
        with pytest.raises(ValueError):
            tracking_load_fraction(-1.0, 10.0)
        with pytest.raises(ValueError):
            tracking_load_fraction(5.0, 0.0)
        with pytest.raises(ValueError):
            tracking_load_fraction(20.0, 10.0)


class TestResidenceEstimation:
    def test_diameter_crossings_match_analytic(self):
        rng = RandomStream(4, "res")
        estimate = estimate_residence_time(
            rng, PedestrianSpeedModel(), samples=20_000
        )
        # E[20/V] for V ~ U(1.1,1.5) = 20 ln(1.5/1.1)/0.4 ≈ 15.51 s.
        expected = 20.0 * math.log(1.5 / 1.1) / 0.4
        assert abs(estimate.mean_seconds - expected) < 0.15

    def test_percentiles_ordered(self):
        rng = RandomStream(5, "res")
        estimate = estimate_residence_time(rng, PedestrianSpeedModel(), samples=5000)
        assert estimate.p10_seconds <= estimate.mean_seconds <= estimate.p90_seconds

    def test_chord_crossings_shorter_on_average(self):
        rng = RandomStream(6, "res")
        diameter = estimate_residence_time(
            rng.child("d"), PedestrianSpeedModel(), samples=5000
        )
        chords = estimate_residence_time(
            rng.child("c"), PedestrianSpeedModel(), samples=5000, chord_crossings=True
        )
        assert chords.mean_seconds < diameter.mean_seconds

    def test_mean_chord_length(self):
        # (4/π)·r for random chords of a disc.
        assert math.isclose(mean_chord_length(20.0), 40.0 / math.pi)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_residence_time(
                RandomStream(1), PedestrianSpeedModel(), samples=0
            )
