"""Tests for waypoint movement and building walks."""

from __future__ import annotations

import pytest

from repro.building.geometry import Point, Rect
from repro.building.layouts import academic_department, linear_wing
from repro.mobility.walker import BuildingWalker, RoomVisit, WalkTimeline
from repro.mobility.waypoint import RandomWaypoint
from repro.sim.clock import ticks_from_seconds
from repro.sim.rng import RandomStream


class TestRandomWaypoint:
    def test_legs_stay_in_room(self):
        room = Rect(0, 0, 10, 10)
        waypoint = RandomWaypoint(room)
        rng = RandomStream(1, "wp")
        legs = waypoint.legs(rng, Point(5, 5))
        previous_end = Point(5, 5)
        for _ in range(20):
            leg = next(legs)
            assert leg.start == previous_end
            assert room.contains(leg.end)
            assert 1.1 <= leg.speed_mps <= 1.5
            assert 2.0 <= leg.pause_seconds <= 30.0
            previous_end = leg.end

    def test_leg_times(self):
        room = Rect(0, 0, 10, 10)
        waypoint = RandomWaypoint(room)
        rng = RandomStream(2, "wp")
        leg = next(waypoint.legs(rng, Point(0, 0)))
        assert leg.travel_seconds == leg.start.distance_to(leg.end) / leg.speed_mps
        assert leg.total_seconds == leg.travel_seconds + leg.pause_seconds

    def test_dwell_time_positive(self):
        waypoint = RandomWaypoint(Rect(0, 0, 10, 10))
        dwell = waypoint.dwell_time(RandomStream(3, "wp"), Point(5, 5), legs=5)
        assert dwell > 0

    def test_start_outside_room_clamped(self):
        room = Rect(0, 0, 10, 10)
        waypoint = RandomWaypoint(room)
        leg = next(waypoint.legs(RandomStream(4, "wp"), Point(-5, 50)))
        assert room.contains(leg.start)

    def test_pause_band_validation(self):
        with pytest.raises(ValueError):
            RandomWaypoint(Rect(0, 0, 1, 1), pause_low_seconds=10, pause_high_seconds=5)


class TestRoomVisit:
    def test_contains(self):
        visit = RoomVisit("a", 100, 200)
        assert not visit.contains(99)
        assert visit.contains(100)
        assert visit.contains(199)
        assert not visit.contains(200)

    def test_open_ended(self):
        visit = RoomVisit("a", 100, None)
        assert visit.contains(10**9)


class TestWalkTimeline:
    def test_room_at(self):
        timeline = WalkTimeline(
            visits=[RoomVisit("a", 0, 100), RoomVisit("b", 100, None)]
        )
        assert timeline.room_at(50) == "a"
        assert timeline.room_at(100) == "b"
        assert timeline.room_at(10**9) == "b"

    def test_transitions(self):
        timeline = WalkTimeline(
            visits=[RoomVisit("a", 0, 100), RoomVisit("b", 100, 200), RoomVisit("c", 200, None)]
        )
        assert list(timeline.transitions()) == [(100, "a", "b"), (200, "b", "c")]


class TestBuildingWalker:
    def _walker(self, plan=None, seed=7):
        return BuildingWalker(
            plan if plan is not None else academic_department(),
            RandomStream(seed, "walker"),
        )

    def test_random_route_follows_edges(self):
        walker = self._walker()
        route = walker.random_route("lab-1", hops=20)
        assert route[0] == "lab-1"
        assert len(route) == 21
        for a, b in zip(route, route[1:]):
            assert walker.plan.passage_between(a, b) is not None

    def test_timeline_is_contiguous_and_ordered(self):
        walker = self._walker()
        timeline = walker.random_timeline("lab-1", hops=5)
        visits = timeline.visits
        assert len(visits) == 6
        for previous, current in zip(visits, visits[1:]):
            assert previous.leave_tick == current.enter_tick
            assert previous.enter_tick < previous.leave_tick
        assert visits[-1].leave_tick is None  # walk ends open

    def test_dwell_durations_respect_band(self):
        walker = BuildingWalker(
            linear_wing(4),
            RandomStream(9, "walker"),
            dwell_low_seconds=10.0,
            dwell_high_seconds=20.0,
        )
        timeline = walker.timeline(["wing-0", "wing-1", "wing-2"])
        # First visit spans dwell + transit; dwell alone is 10-20 s and
        # the 10 m transit at <=1.5 m/s adds at least ~6.6 s.
        first = timeline.visits[0]
        duration = first.leave_tick - first.enter_tick
        assert duration >= ticks_from_seconds(10.0 + 10.0 / 1.5)
        assert duration <= ticks_from_seconds(20.0 + 10.0 / 1.1) + 1

    def test_route_between_non_adjacent_rejected(self):
        walker = self._walker()
        with pytest.raises(ValueError):
            walker.timeline(["lab-1", "lounge"])  # not adjacent

    def test_unknown_rooms_rejected(self):
        walker = self._walker()
        with pytest.raises(ValueError):
            walker.random_route("ghost", 3)
        with pytest.raises(ValueError):
            walker.timeline(["ghost"])

    def test_empty_route_rejected(self):
        with pytest.raises(ValueError):
            self._walker().timeline([])

    def test_start_tick_offset(self):
        walker = self._walker()
        timeline = walker.random_timeline("lab-1", hops=2, start_tick=5000)
        assert timeline.visits[0].enter_tick == 5000

    def test_closed_timeline(self):
        walker = self._walker()
        timeline = walker.timeline(["lab-1"], end_open=False)
        assert timeline.visits[0].leave_tick is not None

    def test_deterministic_given_seed(self):
        t1 = self._walker(seed=11).random_timeline("lab-1", hops=4)
        t2 = self._walker(seed=11).random_timeline("lab-1", hops=4)
        assert t1.rooms_visited == t2.rooms_visited
        assert [v.enter_tick for v in t1.visits] == [v.enter_tick for v in t2.visits]
