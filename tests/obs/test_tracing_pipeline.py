"""Integration: spans thread causally through the whole simulation stack.

A traced run must light up all four layers (kernel / bluetooth / lan /
core) and the chains must reflect *causality*, not the call stack: a
database update parents to the LAN transit that carried the delta,
which parents to the inquiry window that produced it — and a
retransmitted message stays on the span of its original send even
though the retry fires from a timer.
"""

from __future__ import annotations

import pytest

from repro.building.layouts import two_room_testbed
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation
from repro.faults import NO_FAULT, FaultDecision, RetryPolicy
from repro.lan.transport import LANTransport, LatencyModel
from repro.obs.tracing import SpanTracer
from repro.sim.kernel import Kernel

POLICY = RetryPolicy(jitter_ms=0.0)
LONG = 100_000


def _traced_sim() -> SpanTracer:
    spans = SpanTracer(seed=1234, sample=1.0)
    sim = BIPSSimulation(
        plan=two_room_testbed(), config=BIPSConfig(seed=1234), spans=spans
    )
    sim.add_user("u-0", "Walker")
    sim.login("u-0")
    sim.walk("u-0", start_room="room-a", hops=2, start_at_seconds=5.0)
    sim.run(until_seconds=150.0)
    sim.server.locate("u-0", "Walker")
    return spans


@pytest.fixture(scope="module")
def spans() -> SpanTracer:
    return _traced_sim()


@pytest.fixture(scope="module")
def by_id(spans) -> dict:
    return {span.span_id: span for span in spans.spans}


class TestLayers:
    def test_all_four_layers_present(self, spans):
        assert {span.category for span in spans.spans} >= {
            "kernel",
            "bluetooth",
            "lan",
            "core",
        }

    def test_catalogued_names_only_outside_kernel(self, spans):
        catalogued = {
            "bt.window",
            "bt.response",
            "bt.discovery",
            "lan.transit",
            "core.db_apply",
            "core.query",
        }
        names = {
            span.name for span in spans.spans if span.category != "kernel"
        }
        assert names <= catalogued
        # The interesting ones actually occurred in a 150 s walk.
        assert {"bt.window", "bt.response", "lan.transit", "core.db_apply"} <= names

    def test_query_span_recorded(self, spans):
        query = next(spans.by_category("core"), None)
        assert query is not None
        queries = [span for span in spans.spans if span.name == "core.query"]
        assert queries and all("ok" in span.attrs for span in queries)


class TestCausalChains:
    def test_db_apply_chains_to_the_window_that_caused_it(self, spans, by_id):
        applies = [span for span in spans.spans if span.name == "core.db_apply"]
        assert applies
        for apply in applies:
            transit = by_id[apply.parent_id]
            assert transit.name == "lan.transit"
            window = by_id[transit.parent_id]
            assert window.name == "bt.window"
            assert window.parent_id == 0  # windows are trace roots
            assert apply.trace_id == transit.trace_id == window.trace_id

    def test_transit_outcomes_are_catalogued(self, spans):
        outcomes = {
            span.attrs["outcome"]
            for span in spans.spans
            if span.name == "lan.transit"
        }
        assert "delivered" in outcomes
        assert outcomes <= {"delivered", "dropped", "dedup"}

    def test_window_spans_cover_their_duty_cycle(self, spans):
        windows = [span for span in spans.spans if span.name == "bt.window"]
        assert windows
        for window in windows:
            assert window.end_tick is not None
            assert window.duration_ticks > 0
            assert {"ws", "room", "presences", "absences"} <= set(window.attrs)


class ScriptedFaults:
    """Drop/duplicate specific transmissions by decide-call index."""

    def __init__(self, script):
        self.script = dict(script)
        self.calls = 0

    def decide(self, now, source, destination, message):
        decision = self.script.get(self.calls, NO_FAULT)
        self.calls += 1
        return decision


class TestRetransmitContext:
    def _rig(self, script):
        spans = SpanTracer(seed=0, sample=1.0)
        kernel = Kernel()
        transport = LANTransport(
            kernel,
            latency=LatencyModel(base_ms=0.3, jitter_ms=0.0),
            fault_injector=ScriptedFaults(script),
            spans=spans,
        )
        transport.register("server", lambda src, msg: None)
        transport.register("ws:lab-1", lambda src, msg: None)
        return spans, kernel, transport

    def test_retransmit_parents_to_the_original_send(self):
        # Drop the first data copy; the retry fires from the ack-timeout
        # timer, where the ambient context is long gone.
        spans, kernel, transport = self._rig({0: FaultDecision(drop=True)})
        root = spans.begin("bt.window", "bluetooth", 0, parent=None)
        with spans.scope(root):
            transport.send_reliable("ws:lab-1", "server", "delta", POLICY)
        kernel.run_until(LONG)
        spans.end(root, kernel.now)
        transits = [span for span in spans.spans if span.name == "lan.transit"]
        assert [span.attrs["outcome"] for span in transits] == [
            "dropped",
            "delivered",
        ]
        assert all(span.parent_id == root.span_id for span in transits)
        assert transport.stats.retries == 1

    def test_duplicate_copy_resolves_as_dedup_on_the_same_trace(self):
        spans, kernel, transport = self._rig({0: FaultDecision(duplicates=1)})
        root = spans.begin("bt.window", "bluetooth", 0, parent=None)
        with spans.scope(root):
            transport.send_reliable("ws:lab-1", "server", "delta", POLICY)
        kernel.run_until(LONG)
        transits = [span for span in spans.spans if span.name == "lan.transit"]
        assert sorted(span.attrs["outcome"] for span in transits) == [
            "dedup",
            "delivered",
        ]
        assert {span.parent_id for span in transits} == {root.span_id}
        assert all(span.attrs["seq"] == 0 for span in transits)

    def test_send_to_downed_endpoint_is_a_dropped_instant(self):
        spans, kernel, transport = self._rig({})
        transport.unregister("server")
        transport.send("ws:lab-1", "server", "delta")
        kernel.run_until(LONG)
        (transit,) = [span for span in spans.spans if span.name == "lan.transit"]
        assert transit.attrs["outcome"] == "dropped"
        assert transit.duration_ticks == 0
