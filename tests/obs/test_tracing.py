"""Unit tests for the span tracer: lifecycle, sampling, context, export."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracing import (
    CATEGORY_TIDS,
    TICK_MICROSECONDS,
    UNSAMPLED,
    SpanTracer,
    chrome_trace,
    merge_worker_spans,
    write_chrome_trace,
    write_spans_jsonl,
)


class TestSpanLifecycle:
    def test_begin_end_records_interval(self):
        tracer = SpanTracer()
        span = tracer.begin("bt.window", "bluetooth", 100, parent=None, ws="ws:a")
        tracer.end(span, 250)
        assert span.duration_ticks == 150
        record = span.to_record()
        assert record["name"] == "bt.window"
        assert record["cat"] == "bluetooth"
        assert (record["start"], record["end"]) == (100, 250)
        assert record["attrs"] == {"ws": "ws:a"}

    def test_open_span_exports_end_equal_to_start(self):
        tracer = SpanTracer()
        span = tracer.begin("bt.window", "bluetooth", 7, parent=None)
        record = span.to_record()
        assert record["end"] == record["start"] == 7
        assert span.duration_ticks == 0

    def test_attrless_record_has_no_attrs_key(self):
        tracer = SpanTracer()
        span = tracer.instant("core.query", "core", 3, parent=None)
        assert "attrs" not in span.to_record()

    def test_record_copies_attrs(self):
        tracer = SpanTracer()
        span = tracer.begin("lan.transit", "lan", 1, parent=None, outcome="?")
        record = span.to_record()
        span.attrs["outcome"] = "delivered"
        assert record["attrs"]["outcome"] == "?"

    def test_instant_is_zero_duration(self):
        tracer = SpanTracer()
        span = tracer.instant("core.query", "core", 42, parent=None, ok=True)
        assert span.end_tick == span.start_tick == 42

    def test_end_none_is_noop(self):
        SpanTracer().end(None, 5)  # sampled-out spans flow through end()

    def test_enabled_mirrors_legacy_tracer(self):
        assert SpanTracer().enabled is True


class TestCausality:
    def test_ambient_parenting(self):
        tracer = SpanTracer()
        root = tracer.begin("bt.window", "bluetooth", 0, parent=None)
        with tracer.scope(root):
            child = tracer.begin("lan.transit", "lan", 1)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id

    def test_explicit_none_forces_new_root(self):
        tracer = SpanTracer()
        root = tracer.begin("bt.window", "bluetooth", 0, parent=None)
        with tracer.scope(root):
            other = tracer.begin("bt.window", "bluetooth", 1, parent=None)
        assert other.parent_id == 0
        assert other.trace_id != root.trace_id

    def test_captured_context_parents_later_hop(self):
        # The LAN pattern: capture at send time, re-apply at the retry.
        tracer = SpanTracer()
        root = tracer.begin("bt.window", "bluetooth", 0, parent=None)
        prev = tracer.push(root)
        ctx = tracer.capture()
        tracer.pop(prev)
        assert tracer.capture() is None  # ambient is gone...
        late = tracer.begin("lan.transit", "lan", 9, parent=ctx)
        assert late.parent_id == root.span_id  # ...but the hop still chains

    def test_push_pop_restores_previous_context(self):
        tracer = SpanTracer()
        a = tracer.begin("bt.window", "bluetooth", 0, parent=None)
        b = tracer.begin("bt.window", "bluetooth", 0, parent=None)
        prev_a = tracer.push(a)
        prev_b = tracer.push(b)
        assert tracer.capture() is b
        tracer.pop(prev_b)
        assert tracer.capture() is a
        tracer.pop(prev_a)
        assert tracer.capture() is None

    def test_scope_restores_on_exception(self):
        tracer = SpanTracer()
        span = tracer.begin("bt.window", "bluetooth", 0, parent=None)
        with pytest.raises(RuntimeError):
            with tracer.scope(span):
                raise RuntimeError("boom")
        assert tracer.capture() is None


class TestSampling:
    def test_full_sampling_keeps_everything(self):
        tracer = SpanTracer(sample=1.0)
        assert all(
            tracer.begin("bt.window", "bluetooth", t, parent=None) is not None
            for t in range(50)
        )

    def test_zero_sampling_drops_every_root(self):
        tracer = SpanTracer(sample=0.0)
        assert all(
            tracer.begin("bt.window", "bluetooth", t, parent=None) is None
            for t in range(50)
        )
        assert len(tracer) == 0

    def test_sampling_is_deterministic_in_the_seed(self):
        def decisions(seed):
            tracer = SpanTracer(seed=seed, sample=0.5)
            return [
                tracer.begin("bt.window", "bluetooth", t, parent=None) is not None
                for t in range(200)
            ]

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)  # distinct streams
        kept = sum(decisions(7))
        assert 50 < kept < 150  # the rate is actually ~0.5

    def test_pushing_unsampled_root_suppresses_descendants(self):
        tracer = SpanTracer(sample=0.0)
        root = tracer.begin("bt.window", "bluetooth", 0, parent=None)
        assert root is None
        prev = tracer.push(root)
        assert tracer.capture() is UNSAMPLED
        child = tracer.begin("lan.transit", "lan", 1)
        assert child is None  # no orphaned children
        tracer.pop(prev)
        assert len(tracer) == 0

    def test_captured_unsampled_context_suppresses_later_hop(self):
        tracer = SpanTracer(sample=0.0)
        prev = tracer.push(tracer.begin("bt.window", "bluetooth", 0, parent=None))
        ctx = tracer.capture()
        tracer.pop(prev)
        assert tracer.begin("lan.transit", "lan", 5, parent=ctx) is None

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(sample=1.5)
        with pytest.raises(ValueError):
            SpanTracer(sample=-0.1)

    def test_max_spans_cap_counts_drops(self):
        tracer = SpanTracer(max_spans=3)
        for t in range(5):
            tracer.begin("bt.window", "bluetooth", t, parent=None)
        assert len(tracer) == 3
        assert tracer.dropped == 2


class TestRecorderHook:
    def test_end_feeds_the_recorder(self):
        class Ring:
            def __init__(self):
                self.records = []

            def note(self, record):
                self.records.append(record)

        ring = Ring()
        tracer = SpanTracer(recorder=ring)
        span = tracer.begin("lan.transit", "lan", 1, parent=None)
        assert ring.records == []  # only *finished* spans are noted
        tracer.end(span, 4)
        assert ring.records == [span.to_record()]


class TestMerge:
    def test_merge_tags_trial_index_as_pid(self):
        lists = [
            [{"name": "a", "cat": "kernel"}],
            [],
            [{"name": "b", "cat": "kernel"}, {"name": "c", "cat": "lan"}],
        ]
        merged = merge_worker_spans(lists)
        assert [(r["name"], r["pid"]) for r in merged] == [
            ("a", 0),
            ("b", 2),
            ("c", 2),
        ]
        assert "pid" not in lists[0][0]  # inputs are not mutated


class TestChromeExport:
    def _records(self):
        tracer = SpanTracer()
        window = tracer.begin("bt.window", "bluetooth", 0, parent=None, ws="ws:a")
        with tracer.scope(window):
            tracer.instant("core.query", "core", 2, ok=True)
        tracer.end(window, 10)
        return tracer.records()

    def test_intervals_and_instants(self):
        document = chrome_trace(self._records())
        assert document["displayTimeUnit"] == "ms"
        by_name = {e["name"]: e for e in document["traceEvents"] if e["ph"] != "M"}
        window = by_name["bt.window"]
        assert window["ph"] == "X"
        assert window["dur"] == 10 * TICK_MICROSECONDS
        assert window["tid"] == CATEGORY_TIDS["bluetooth"]
        assert window["args"]["ws"] == "ws:a"
        query = by_name["core.query"]
        assert query["ph"] == "i"
        assert query["s"] == "t"
        assert query["ts"] == 2 * TICK_MICROSECONDS
        assert query["args"]["parent"] == window["args"]["span"]

    def test_lane_metadata(self):
        events = chrome_trace(self._records(), process_name="bips")["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        names = {
            (e["name"], e["tid"]): e["args"]["name"] for e in metadata
        }
        assert names[("process_name", 0)] == "bips"
        assert names[("thread_name", CATEGORY_TIDS["bluetooth"])] == "bluetooth"
        assert names[("thread_name", CATEGORY_TIDS["core"])] == "core"

    def test_merged_trials_get_one_process_each(self):
        merged = merge_worker_spans([self._records(), self._records()])
        events = chrome_trace(merged, process_name="bips table1")["traceEvents"]
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process_names == {0: "bips table1 trial 0", 1: "bips table1 trial 1"}

    def test_unknown_category_gets_overflow_lane(self):
        document = chrome_trace([
            {"name": "x", "cat": "misc", "trace": 1, "span": 1, "parent": 0,
             "start": 0, "end": 1}
        ])
        event = next(e for e in document["traceEvents"] if e["ph"] != "M")
        assert event["tid"] == 9


class TestWriters:
    def test_chrome_writer_is_loadable_and_deterministic(self, tmp_path):
        tracer = SpanTracer()
        tracer.end(tracer.begin("bt.window", "bluetooth", 0, parent=None), 5)
        records = tracer.records()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert write_chrome_trace(str(a), records) == 1
        write_chrome_trace(str(b), records)
        assert a.read_bytes() == b.read_bytes()
        document = json.loads(a.read_text())
        assert {e["ph"] for e in document["traceEvents"]} == {"M", "X"}

    def test_jsonl_writer_one_record_per_line(self, tmp_path):
        tracer = SpanTracer()
        tracer.end(tracer.begin("bt.window", "bluetooth", 0, parent=None), 5)
        tracer.instant("core.query", "core", 6, parent=None, ok=False)
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(str(path), tracer.records()) == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line)["name"] for line in lines] == [
            "bt.window",
            "core.query",
        ]


class TestWallClock:
    def test_wall_annotation_is_opt_in(self):
        tracer = SpanTracer()
        span = tracer.begin("bt.window", "bluetooth", 0, parent=None)
        tracer.end(span, 1)
        assert "wall_us" not in span.to_record()

    def test_wall_annotation_when_enabled(self):
        tracer = SpanTracer(wall=True)
        span = tracer.begin("bt.window", "bluetooth", 0, parent=None)
        tracer.end(span, 1)
        assert span.to_record()["wall_us"] >= 0.0
