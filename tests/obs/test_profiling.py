"""Unit tests for the wall-time profiler (injectable clock, no sleeps)."""

from __future__ import annotations

import pytest

from repro.obs.profiling import Profiler


class FakeClock:
    """A clock that only moves when told to."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


class TestAccounting:
    def test_begin_stop_accumulates_exactly(self):
        clock = FakeClock()
        profiler = Profiler(clock=clock)
        token = profiler.begin()
        clock.tick(0.25)
        profiler.stop("sim.kernel", token)
        token = profiler.begin()
        clock.tick(0.50)
        profiler.stop("sim.kernel", token)
        assert profiler.total_seconds("sim.kernel") == 0.75
        assert profiler.count("sim.kernel") == 2

    def test_sections_are_inclusive(self):
        # Inner time counts in both sections (documented O(1) model).
        clock = FakeClock()
        profiler = Profiler(clock=clock)
        outer = profiler.begin()
        clock.tick(0.1)
        inner = profiler.begin()
        clock.tick(0.2)
        profiler.stop("core.server", inner)
        clock.tick(0.1)
        profiler.stop("sim.kernel", outer)
        assert profiler.total_seconds("sim.kernel") == pytest.approx(0.4)
        assert profiler.total_seconds("core.server") == pytest.approx(0.2)

    def test_section_context_manager(self):
        clock = FakeClock()
        profiler = Profiler(clock=clock)
        with profiler.section("analysis"):
            clock.tick(1.5)
        assert profiler.total_seconds("analysis") == 1.5
        assert profiler.count("analysis") == 1

    def test_unentered_section_reads_zero(self):
        profiler = Profiler(clock=FakeClock())
        assert profiler.total_seconds("ghost") == 0.0
        assert profiler.count("ghost") == 0
        assert len(profiler) == 0


class TestReporting:
    def _loaded(self):
        clock = FakeClock()
        profiler = Profiler(clock=clock)
        with profiler.section("sim.kernel"):
            clock.tick(0.3)
        with profiler.section("lan.deliver"):
            clock.tick(0.1)
        return profiler

    def test_snapshot_sorted_heaviest_first(self):
        rows = self._loaded().snapshot()
        assert [row["section"] for row in rows] == ["sim.kernel", "lan.deliver"]
        assert rows[0]["mean_seconds"] == rows[0]["total_seconds"]

    def test_render_report_lists_sections(self):
        report = self._loaded().render_report()
        assert "sim.kernel" in report
        assert "lan.deliver" in report

    def test_empty_report(self):
        assert "no sections" in Profiler(clock=FakeClock()).render_report()

    def test_real_clock_default_works(self):
        profiler = Profiler()
        with profiler.section("noop"):
            pass
        assert profiler.total_seconds("noop") >= 0.0
