"""Unit tests for the typed event bus and its Tracer bridge."""

from __future__ import annotations

from repro.obs.events import (
    DeltaPushed,
    DeviceDiscovered,
    EventBus,
    InquiryStarted,
    NullEventBus,
    QueryServed,
)
from repro.sim.trace import Tracer


class TestEvent:
    def test_category_is_snake_cased_class_name(self):
        event = DeviceDiscovered(tick=5, master="ws-1", address="00:11")
        assert event.category == "device_discovered"
        started = InquiryStarted(tick=0, workstation_id="w", room_id="r", window_index=0)
        assert started.category == "inquiry_started"

    def test_describe_dumps_fields_without_tick(self):
        event = QueryServed(tick=3, kind="location", querier="u", target="T", ok=True)
        text = event.describe()
        assert "kind='location'" in text
        assert "ok=True" in text
        assert "tick" not in text

    def test_events_are_frozen_and_comparable(self):
        a = DeviceDiscovered(tick=1, master="m", address="a")
        b = DeviceDiscovered(tick=1, master="m", address="a")
        assert a == b


class TestEventBus:
    def test_wildcard_subscriber_sees_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(DeviceDiscovered(tick=1, master="m", address="a"))
        bus.emit(QueryServed(tick=2, kind="path", querier="u", target="t", ok=False))
        assert len(seen) == 2

    def test_typed_subscriber_filters(self):
        bus = EventBus()
        discovered = []
        bus.subscribe(discovered.append, DeviceDiscovered)
        bus.emit(DeviceDiscovered(tick=1, master="m", address="a"))
        bus.emit(QueryServed(tick=2, kind="path", querier="u", target="t", ok=True))
        assert len(discovered) == 1
        assert discovered[0].address == "a"

    def test_counts_by_type_name(self):
        bus = EventBus()
        bus.emit(DeviceDiscovered(tick=1, master="m", address="a"))
        bus.emit(DeviceDiscovered(tick=2, master="m", address="b"))
        bus.emit(DeltaPushed(tick=3, workstation_id="w", room_id="r",
                             presences=1, absences=0))
        assert bus.emitted == 3
        assert bus.counts == {"DeviceDiscovered": 2, "DeltaPushed": 1}

    def test_pipe_to_tracer_bridges_legacy_records(self):
        bus = EventBus()
        tracer = Tracer()
        bus.pipe_to_tracer(tracer)
        bus.emit(DeviceDiscovered(tick=42, master="ws-1", address="00:11"))
        assert len(tracer.records) == 1
        record = tracer.records[0]
        assert record.tick == 42
        assert record.category == "device_discovered"
        assert "master='ws-1'" in record.message

    def test_tracer_category_filter_applies_to_piped_events(self):
        bus = EventBus()
        tracer = Tracer(categories={"delta_pushed"})
        bus.pipe_to_tracer(tracer)
        bus.emit(DeviceDiscovered(tick=1, master="m", address="a"))
        bus.emit(DeltaPushed(tick=2, workstation_id="w", room_id="r",
                             presences=1, absences=0))
        assert [rec.category for rec in tracer.records] == ["delta_pushed"]

    def test_null_bus_drops_but_stays_subscribable(self):
        bus = NullEventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(DeviceDiscovered(tick=1, master="m", address="a"))
        assert seen == []
        assert bus.emitted == 0
