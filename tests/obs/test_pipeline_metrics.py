"""Integration: a real simulation populates every metrics layer.

A small two-room deployment with one walking user must light up the
radio, LAN, and server instruments — and two identical seeded runs must
export byte-identical JSONL (the determinism contract of the metrics
plane).
"""

from __future__ import annotations

import pytest

from repro.building.layouts import two_room_testbed
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation
from repro.obs.events import DeltaPushed, DeviceDiscovered, EventBus


def _run_small_sim(events: EventBus | None = None) -> BIPSSimulation:
    sim = BIPSSimulation(
        plan=two_room_testbed(), config=BIPSConfig(seed=1234), events=events
    )
    sim.add_user("u-0", "Walker")
    sim.login("u-0")
    sim.walk("u-0", start_room="room-a", hops=2, start_at_seconds=5.0)
    sim.run(until_seconds=150.0)
    sim.server.locate("u-0", "Walker")
    return sim


@pytest.fixture(scope="module")
def sim() -> BIPSSimulation:
    return _run_small_sim()


@pytest.fixture(scope="module")
def by_name(sim) -> dict:
    return {
        (record["name"], tuple(sorted(record["labels"].items()))): record
        for record in sim.metrics_snapshot()
    }


def _value(by_name, name, **labels):
    return by_name[(name, tuple(sorted(labels.items())))]["value"]


class TestPipelineMetrics:
    def test_sim_kernel_layer(self, by_name):
        assert _value(by_name, "sim.events_fired") > 0
        assert ("sim.queue_depth", ()) in by_name
        assert _value(by_name, "sim.simulated_seconds") == pytest.approx(150.0)

    def test_bluetooth_layer(self, by_name):
        assert _value(by_name, "bt.inquiry.responses_received") > 0
        assert _value(by_name, "bt.inquiry.devices_discovered") > 0
        assert _value(by_name, "bt.scan.responses_sent") > 0

    def test_lan_layer(self, by_name):
        assert _value(by_name, "lan.messages_sent") > 0
        assert _value(by_name, "lan.bytes_sent") > 0
        latency = by_name[("lan.delivery_latency_ticks", ())]
        assert latency["kind"] == "histogram"
        assert latency["count"] > 0

    def test_server_layer(self, by_name):
        assert _value(by_name, "core.presence_updates_received") > 0
        assert _value(by_name, "core.queries_served", kind="location") > 0
        assert _value(by_name, "db.known_devices") == 1

    def test_occupancy_gauges_exist_per_room(self, by_name):
        occupancy = {
            labels: record["value"]
            for (name, labels), record in by_name.items()
            if name == "core.piconet_occupancy"
        }
        assert set(occupancy) == {(("room", "room-a"),), (("room", "room-b"),)}
        # One logged-in device somewhere on the floor.
        assert sum(occupancy.values()) == 1

    def test_snapshot_has_all_three_kinds(self, by_name):
        kinds = {record["kind"] for record in by_name.values()}
        assert kinds == {"counter", "gauge", "histogram"}

    def test_events_flow_during_run(self):
        bus = EventBus()
        discoveries = []
        bus.subscribe(discoveries.append, DeviceDiscovered)
        deltas = []
        bus.subscribe(deltas.append, DeltaPushed)
        _run_small_sim(events=bus)
        assert bus.emitted > 0
        assert discoveries, "inquiry windows should discover the walker's device"
        assert deltas, "presence changes should be pushed to the server"
        assert all(d.presences + d.absences > 0 for d in deltas)


class TestDeterminism:
    def test_identical_seeds_identical_jsonl(self):
        first = _run_small_sim()
        second = _run_small_sim()
        first._finalize_metrics()
        second._finalize_metrics()
        assert first.metrics.to_jsonl() == second.metrics.to_jsonl()
