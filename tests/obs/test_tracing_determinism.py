"""The tracing determinism contract.

Enabling tracing must change **no** simulated result; the collected
spans themselves must be byte-identical across schedulers and across
``--jobs N``; and the config digests that key the result cache must not
move when trace flags are flipped.
"""

from __future__ import annotations

from repro.building.layouts import two_room_testbed
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation
from repro.experiments.table1 import EXPERIMENT, Table1Config, trial_payload
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer, merge_worker_spans
from repro.runner import build_runner
from repro.runner.seeding import config_digest, seeding_digest

TRIALS = 6


def _run_small_sim(spans=None, metrics=None):
    sim = BIPSSimulation(
        plan=two_room_testbed(),
        config=BIPSConfig(seed=1234),
        metrics=metrics,
        spans=spans,
    )
    sim.add_user("u-0", "Walker")
    sim.login("u-0")
    sim.walk("u-0", start_room="room-a", hops=2, start_at_seconds=5.0)
    sim.run(until_seconds=150.0)
    sim.server.locate("u-0", "Walker")
    return sim


class TestTracingChangesNothing:
    def test_metrics_jsonl_identical_with_tracing_on(self):
        untraced = MetricsRegistry()
        _run_small_sim(metrics=untraced)
        traced = MetricsRegistry()
        _run_small_sim(spans=SpanTracer(seed=1234), metrics=traced)
        assert untraced.to_jsonl() == traced.to_jsonl()

    def test_table1_payloads_identical_modulo_spans_key(self):
        runner = build_runner(jobs=1, use_cache=False)
        plain = runner.map_trials(
            EXPERIMENT, Table1Config(trials=TRIALS), trial_payload, TRIALS
        )
        traced = runner.map_trials(
            EXPERIMENT,
            Table1Config(trials=TRIALS, trace=True),
            trial_payload,
            TRIALS,
        )
        assert [
            {key: value for key, value in payload.items() if key != "spans"}
            for payload in traced
        ] == plain
        assert all(payload["spans"] for payload in traced)

    def test_trace_flags_keep_trial_seeds_but_move_the_cache_cell(self):
        plain = Table1Config(trials=TRIALS)
        traced = Table1Config(trials=TRIALS, trace=True, trace_sample=0.5)
        # Same seeding digest => a traced run replays the untraced trials.
        assert seeding_digest(EXPERIMENT, plain) == seeding_digest(
            EXPERIMENT, traced
        )
        # ...but its payloads carry spans, so it must cache separately.
        assert config_digest(EXPERIMENT, plain) != config_digest(EXPERIMENT, traced)


class TestSpanStreamDeterminism:
    def _records(self):
        spans = SpanTracer(seed=1234, sample=1.0)
        _run_small_sim(spans=spans)
        return spans.records()

    def test_two_identical_runs_produce_identical_spans(self):
        assert self._records() == self._records()

    def test_calendar_scheduler_produces_identical_spans(self, monkeypatch):
        heap_records = self._records()
        monkeypatch.setenv("BIPS_SIM_SCHEDULER", "calendar")
        assert self._records() == heap_records

    def test_sampled_runs_are_deterministic_too(self):
        def sampled():
            spans = SpanTracer(seed=99, sample=0.25)
            _run_small_sim(spans=spans)
            return spans.records()

        first, second = sampled(), sampled()
        assert first == second
        assert 0 < len(first) < len(self._records())


class TestParallelMerge:
    def test_jobs_2_merge_is_byte_identical_to_serial(self):
        config = Table1Config(trials=TRIALS, trace=True)

        def merged(jobs):
            runner = build_runner(jobs=jobs, use_cache=False)
            payloads = runner.map_trials(EXPERIMENT, config, trial_payload, TRIALS)
            return merge_worker_spans([payload["spans"] for payload in payloads])

        serial = merged(1)
        parallel = merged(2)
        assert serial == parallel
        assert {record["pid"] for record in serial} == set(range(TRIALS))
