"""Unit tests for the flight recorder: ring, triggers, dump files."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import EventBus, ServerBrownout, WorkstationFailed
from repro.obs.flight import FlightRecorder


class TestRing:
    def test_ring_keeps_only_the_last_n(self):
        recorder = FlightRecorder(capacity=3, out_dir="unused")
        for index in range(10):
            recorder.note({"span": index})
        assert recorder.noted == 10
        assert len(recorder) == 3
        assert [r["span"] for r in recorder.snapshot()] == [7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_note_event_flattens_dataclass_fields(self):
        recorder = FlightRecorder(out_dir="unused")
        recorder.note_event(
            WorkstationFailed(tick=42, workstation_id="ws:lab-1", room_id="lab-1")
        )
        (record,) = recorder.snapshot()
        assert record == {
            "kind": "event",
            "event": "WorkstationFailed",
            "tick": 42,
            "workstation_id": "ws:lab-1",
            "room_id": "lab-1",
        }

    def test_watch_records_every_bus_event(self):
        bus = EventBus()
        recorder = FlightRecorder(out_dir="unused")
        recorder.watch(bus)
        bus.emit(ServerBrownout(tick=1, active=True))
        bus.emit(ServerBrownout(tick=9, active=False))
        assert [r["tick"] for r in recorder.snapshot()] == [1, 9]


class TestDumps:
    def test_trigger_writes_numbered_dump(self, tmp_path):
        recorder = FlightRecorder(capacity=4, out_dir=str(tmp_path))
        recorder.note({"span": 1})
        first = recorder.trigger("manual check")
        second = recorder.trigger("manual check")
        assert recorder.dumps == [first, second]
        assert first.endswith("flight-0001-manual-check.json")
        assert second.endswith("flight-0002-manual-check.json")
        document = json.loads((tmp_path / "flight-0001-manual-check.json").read_text())
        assert document["reason"] == "manual check"
        assert document["capacity"] == 4
        assert document["records_seen"] == 1
        assert document["records"] == [{"span": 1}]

    def test_arm_dumps_on_fault_event_with_trigger_last(self, tmp_path):
        bus = EventBus()
        recorder = FlightRecorder(out_dir=str(tmp_path))
        recorder.arm(bus, WorkstationFailed, ServerBrownout)
        recorder.note({"span": 1})
        bus.emit(ServerBrownout(tick=77, active=True))
        (path,) = recorder.dumps
        assert "ServerBrownout" in path
        records = json.loads(open(path).read())["records"]
        assert records[-1]["event"] == "ServerBrownout"
        assert records[0] == {"span": 1}

    def test_arm_ignores_other_event_types(self, tmp_path):
        bus = EventBus()
        recorder = FlightRecorder(out_dir=str(tmp_path))
        recorder.arm(bus, WorkstationFailed)
        bus.emit(ServerBrownout(tick=1, active=True))
        assert recorder.dumps == []

    def test_guard_dumps_on_assertion_and_reraises(self, tmp_path):
        recorder = FlightRecorder(out_dir=str(tmp_path))
        recorder.note({"span": 1})
        with pytest.raises(AssertionError):
            with recorder.guard("invariant"):
                assert False, "tracked invariant broke"
        (path,) = recorder.dumps
        assert "invariant" in path

    def test_guard_is_silent_on_success_and_other_errors(self, tmp_path):
        recorder = FlightRecorder(out_dir=str(tmp_path))
        with recorder.guard():
            pass
        with pytest.raises(ValueError):
            with recorder.guard():
                raise ValueError("not an assertion")
        assert recorder.dumps == []
