"""End-to-end tests for ``bips trace``: exit codes, files, output shape."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.usefixtures("sandbox")


@pytest.fixture
def sandbox(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def _small_e2e(*extra):
    return ["trace", "--users", "2", "--duration", "60.0", *extra]


class TestChromeExport:
    def test_e2e_chrome_trace_validates(self, sandbox, capsys):
        assert main(_small_e2e("--format", "chrome")) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "results/trace/trace-e2e.json" in out
        document = json.loads((sandbox / "results/trace/trace-e2e.json").read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("X", "i", "M")
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] > 0 and event["ts"] >= 0
            elif event["ph"] == "i":
                assert event["s"] == "t"

    def test_e2e_reports_all_four_layers(self, sandbox, capsys):
        assert main(_small_e2e()) == 0
        assert "layers: kernel, bluetooth, lan, core" in capsys.readouterr().out

    def test_table1_gets_one_process_per_trial(self, sandbox, capsys):
        assert main(
            ["trace", "--experiment", "table1", "--trials", "3",
             "--out", "t1.json"]
        ) == 0
        document = json.loads((sandbox / "t1.json").read_text())
        pids = {
            event["pid"]
            for event in document["traceEvents"]
            if event["ph"] != "M"
        }
        assert pids == {0, 1, 2}


class TestJsonlExport:
    def test_jsonl_records_parse_and_carry_causality(self, sandbox):
        assert main(_small_e2e("--format", "jsonl", "--out", "spans.jsonl")) == 0
        lines = (sandbox / "spans.jsonl").read_text().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        assert {"name", "cat", "trace", "span", "parent", "start", "end"} <= set(
            records[0]
        )
        assert {record["cat"] for record in records} == {
            "kernel",
            "bluetooth",
            "lan",
            "core",
        }

    def test_jsonl_is_byte_deterministic(self, sandbox):
        main(_small_e2e("--format", "jsonl", "--out", "a.jsonl"))
        main(_small_e2e("--format", "jsonl", "--out", "b.jsonl"))
        assert (sandbox / "a.jsonl").read_bytes() == (sandbox / "b.jsonl").read_bytes()


class TestSampling:
    def test_zero_sample_writes_an_empty_trace(self, sandbox, capsys):
        assert main(_small_e2e("--sample", "0.0", "--format", "jsonl")) == 0
        out = capsys.readouterr().out
        assert "wrote 0 spans" in out
        assert "layers: none" in out

    def test_out_of_range_sample_is_usage_error(self, sandbox, capsys):
        assert main(_small_e2e("--sample", "1.5")) == 2
        assert "--sample out of range" in capsys.readouterr().err


class TestFlightRecorder:
    def test_armed_run_without_faults_reports_no_dump(self, sandbox, capsys):
        assert main(_small_e2e("--flight-recorder")) == 0
        out = capsys.readouterr().out
        assert "no fault fired, no dump written" in out
        assert not list((sandbox / "results/trace").glob("flight-*.json"))

    def test_fault_windows_dump_the_ring(self, sandbox, capsys):
        assert main(
            ["trace", "--users", "4", "--duration", "120.0",
             "--faults", "flaky-workstations", "--flight-recorder"]
        ) == 0
        out = capsys.readouterr().out
        assert "flight recorder dumped:" in out
        dumps = sorted((sandbox / "results/trace").glob("flight-*.json"))
        assert dumps
        document = json.loads(dumps[0].read_text())
        assert document["records"][-1]["event"] == "WorkstationFailed"
        # The ring holds the spans leading up to the fault.
        assert any("cat" in record for record in document["records"])
