"""Unit tests for the metrics registry and its instruments."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    snapshot_from_jsonl,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative_increment(self):
        counter = Counter("c")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_zero_increment_allowed(self):
        counter = Counter("c")
        counter.inc(0)
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(3)
        gauge.dec(5)
        assert gauge.value == 8

    def test_can_go_negative(self):
        gauge = Gauge("g")
        gauge.dec(2)
        assert gauge.value == -2


class TestHistogram:
    def test_counts_land_in_first_matching_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            hist.observe(value)
        # (<=1, <=2, <=4, +inf)
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.sum == pytest.approx(106.0)

    def test_mean(self):
        hist = Histogram("h", buckets=(10.0,))
        assert hist.mean is None
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == pytest.approx(3.0)

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram("h", buckets=(10.0,))
        for _ in range(10):
            hist.observe(5.0)
        # All mass in (0, 10]; the median interpolates to the middle.
        assert hist.percentile(0.5) == pytest.approx(5.0)
        assert hist.percentile(1.0) == pytest.approx(10.0)

    def test_percentile_overflow_bucket_reports_max(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(50.0)
        assert hist.percentile(0.99) == 50.0

    def test_percentile_empty_is_none(self):
        assert Histogram("h", buckets=(1.0,)).percentile(0.5) is None

    def test_percentile_rejects_out_of_range_quantile(self):
        hist = Histogram("h", buckets=(1.0,))
        with pytest.raises(MetricError):
            hist.percentile(0.0)
        with pytest.raises(MetricError):
            hist.percentile(1.5)

    def test_rejects_unsorted_or_duplicate_buckets(self):
        with pytest.raises(MetricError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            Histogram("h", buckets=())


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        same = registry.counter("msgs", type="hello")
        other = registry.counter("msgs", type="update")
        assert same is not other
        same.inc()
        assert registry.counter("msgs", type="hello").value == 1
        assert registry.counter("msgs", type="update").value == 0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("m", x="1", y="2")
        b = registry.counter("m", y="2", x="1")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(MetricError):
            registry.gauge("n")
        with pytest.raises(MetricError):
            registry.histogram("n")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        # Re-registering without buckets reuses the existing series.
        assert registry.histogram("h").bounds == (1.0, 2.0)
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_empty_name_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("")

    def test_default_buckets_used_when_unspecified(self):
        registry = MetricsRegistry()
        assert registry.histogram("h").bounds == DEFAULT_BUCKETS

    def test_snapshot_is_isolated(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        snap = registry.snapshot()
        counter.inc(10)
        assert snap[0]["value"] == 1
        # Mutating the snapshot does not touch the registry either.
        snap[0]["value"] = 999
        assert registry.counter("c").value == 11

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(3.0)
        by_name = {record["name"]: record for record in registry.snapshot()}
        assert by_name["c"] == {
            "kind": "counter", "name": "c", "labels": {}, "value": 2,
        }
        assert by_name["g"]["kind"] == "gauge"
        assert by_name["g"]["value"] == 1.5
        hist = by_name["h"]
        assert hist["kind"] == "histogram"
        assert hist["count"] == 1
        # Final bucket bound is null (the +inf overflow).
        assert hist["buckets"] == [[1.0, 0], [None, 1]]

    def test_jsonl_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", room="lab-1").inc(7)
        registry.gauge("g").set(-2)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        text = registry.to_jsonl()
        for line in text.splitlines():
            json.loads(line)  # every line is standalone JSON
        assert snapshot_from_jsonl(text) == registry.snapshot()

    def test_write_jsonl(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(4)
        path = tmp_path / "metrics.jsonl"
        written = registry.write_jsonl(str(path))
        assert written == 2
        assert snapshot_from_jsonl(path.read_text()) == registry.snapshot()

    def test_jsonl_is_deterministic(self):
        def build() -> MetricsRegistry:
            registry = MetricsRegistry()
            registry.counter("z.last").inc(3)
            registry.counter("a.first", kind="x").inc(1)
            registry.histogram("h", buckets=(1.0, 5.0)).observe(2.0)
            registry.gauge("g").set(9)
            return registry

        assert build().to_jsonl() == build().to_jsonl()

    def test_scoreboard_lists_every_kind_once(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.counter("c2").inc()
        board = registry.render_scoreboard("test board")
        assert board.splitlines()[0] == "== test board =="
        assert board.count("-- counters --") == 1
        assert board.count("-- gauges --") == 1
        assert board.count("-- histograms --") == 1
        assert "c2: 1" in board

    def test_scoreboard_empty_registry(self):
        board = MetricsRegistry().render_scoreboard()
        assert "(no metrics recorded)" in board
