"""Tests for propagation models and the spatial medium."""

from __future__ import annotations

import math

import pytest

from repro.radio.medium import Position, RadioMedium
from repro.radio.propagation import CoverageModel, LogDistancePathLoss


class TestCoverageModel:
    def test_default_radius_is_ten_meters(self):
        assert CoverageModel().radius_m == 10.0

    def test_in_range_boundary_inclusive(self):
        model = CoverageModel(radius_m=10.0)
        assert model.in_range(10.0)
        assert not model.in_range(10.0001)

    def test_diameter_matches_paper(self):
        # §5: "the diameter of the coverage area is about 20m"
        assert CoverageModel().diameter_m == 20.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            CoverageModel().in_range(-1.0)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            CoverageModel(radius_m=0.0)


class TestLogDistance:
    def test_loss_grows_with_distance(self):
        model = LogDistancePathLoss()
        assert model.path_loss_db(10.0) > model.path_loss_db(2.0)

    def test_reference_distance_clamp(self):
        model = LogDistancePathLoss()
        assert model.path_loss_db(0.1) == model.path_loss_db(1.0)

    def test_exponent_slope(self):
        model = LogDistancePathLoss(exponent=3.0)
        # +30 dB per decade with n = 3.
        delta = model.path_loss_db(10.0) - model.path_loss_db(1.0)
        assert math.isclose(delta, 30.0)

    def test_class2_budget_gives_about_20m(self):
        # Class-2 radio: ~80 dB budget -> ~21.5 m with the defaults,
        # the same regime as the paper's 20 m piconet.
        radius = LogDistancePathLoss().max_range_m(80.0)
        assert 15.0 < radius < 30.0

    def test_coverage_derivation(self):
        coverage = LogDistancePathLoss().coverage(80.0)
        assert coverage.radius_m == LogDistancePathLoss().max_range_m(80.0)

    def test_tiny_budget_clamps_to_reference(self):
        assert LogDistancePathLoss().max_range_m(10.0) == 1.0


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0

    def test_moved_toward_partial(self):
        moved = Position(0, 0).moved_toward(Position(10, 0), 4.0)
        assert moved == Position(4.0, 0.0)

    def test_moved_toward_overshoot_clamps(self):
        target = Position(1, 1)
        assert Position(0, 0).moved_toward(target, 100.0) == target

    def test_moved_toward_zero_distance_target(self):
        origin = Position(2, 2)
        assert origin.moved_toward(origin, 5.0) == origin


class TestRadioMedium:
    def test_place_and_range(self):
        medium = RadioMedium(CoverageModel(radius_m=10.0))
        medium.place("ws", Position(0, 0))
        medium.place("dev", Position(6, 8))
        assert medium.distance("ws", "dev") == 10.0
        assert medium.in_range("ws", "dev")

    def test_move_station(self):
        medium = RadioMedium()
        medium.place("dev", Position(0, 0))
        medium.place("ws", Position(5, 0))
        medium.place("dev", Position(50, 0))
        assert not medium.in_range("ws", "dev")

    def test_stations_in_range_of(self):
        medium = RadioMedium(CoverageModel(radius_m=10.0))
        medium.place("ws", Position(0, 0))
        medium.place("near", Position(5, 0))
        medium.place("far", Position(50, 0))
        assert medium.stations_in_range_of("ws") == ["near"]

    def test_remove(self):
        medium = RadioMedium()
        medium.place("x", Position(0, 0))
        medium.remove("x")
        assert "x" not in medium
        medium.remove("x")  # idempotent

    def test_unknown_station_raises(self):
        with pytest.raises(KeyError):
            RadioMedium().position_of("ghost")
