"""Tests for the FHS collision channel."""

from __future__ import annotations

import pytest

from repro.bluetooth.address import BDAddr
from repro.bluetooth.packets import FHSPacket
from repro.radio.channel import ResponseChannel


def fhs(sender_value: int, tick: int, channel: int = 0) -> FHSPacket:
    return FHSPacket(sender=BDAddr(sender_value), clkn=0, channel=channel, tx_tick=tick)


class TestDelivery:
    def test_lone_response_delivered(self, kernel):
        received = []
        channel = ResponseChannel(kernel, lambda pkt, tick: received.append((pkt, tick)))
        channel.schedule_fhs(100, 7, fhs(1, 100, 7))
        kernel.run_until(200)
        assert len(received) == 1
        assert received[0][1] == 100
        assert channel.stats.delivered == 1

    def test_same_tick_same_channel_collides(self, kernel):
        received = []
        channel = ResponseChannel(kernel, lambda pkt, tick: received.append(pkt))
        channel.schedule_fhs(100, 7, fhs(1, 100, 7))
        channel.schedule_fhs(100, 7, fhs(2, 100, 7))
        kernel.run_until(200)
        assert received == []
        assert channel.stats.collided == 2
        assert channel.stats.collision_events == 1
        record = channel.stats.collisions[0]
        assert record.tick == 100 and record.rf_channel == 7
        assert len(record.senders) == 2

    def test_three_way_collision(self, kernel):
        received = []
        channel = ResponseChannel(kernel, lambda pkt, tick: received.append(pkt))
        for sender in (1, 2, 3):
            channel.schedule_fhs(100, 7, fhs(sender, 100, 7))
        kernel.run_until(200)
        assert received == []
        assert channel.stats.collided == 3
        assert channel.stats.collision_events == 1

    def test_same_tick_different_channels_no_collision(self, kernel):
        received = []
        channel = ResponseChannel(kernel, lambda pkt, tick: received.append(pkt))
        channel.schedule_fhs(100, 7, fhs(1, 100, 7))
        channel.schedule_fhs(100, 8, fhs(2, 100, 8))
        kernel.run_until(200)
        assert len(received) == 2

    def test_same_channel_different_ticks_no_collision(self, kernel):
        received = []
        channel = ResponseChannel(kernel, lambda pkt, tick: received.append(pkt))
        channel.schedule_fhs(100, 7, fhs(1, 100, 7))
        channel.schedule_fhs(132, 7, fhs(2, 132, 7))
        kernel.run_until(200)
        assert len(received) == 2

    def test_scheduling_in_past_rejected(self, kernel):
        channel = ResponseChannel(kernel, lambda pkt, tick: None)
        kernel.run_until(100)
        with pytest.raises(ValueError):
            channel.schedule_fhs(50, 7, fhs(1, 50, 7))

    def test_pending_count(self, kernel):
        channel = ResponseChannel(kernel, lambda pkt, tick: None)
        channel.schedule_fhs(100, 7, fhs(1, 100, 7))
        channel.schedule_fhs(100, 7, fhs(2, 100, 7))
        assert channel.pending_count == 2
        kernel.run_until(100)
        assert channel.pending_count == 0


class TestBatchAnnounce:
    """schedule_fhs_batch: the batched engine's vectorized announce."""

    def test_batch_equals_sequential(self):
        from repro.sim.kernel import Kernel

        results = []
        for batched in (False, True):
            kernel = Kernel()
            received = []
            channel = ResponseChannel(kernel, lambda pkt, tick: received.append(pkt))
            packets = [fhs(sender, 100, 7) for sender in (1, 2, 3)]
            if batched:
                channel.schedule_fhs_batch(100, 7, packets)
            else:
                for packet in packets:
                    channel.schedule_fhs(100, 7, packet)
            kernel.run_until(200)
            stats = channel.stats
            collisions = tuple(
                (c.tick, c.rf_channel, c.senders) for c in stats.collisions
            )
            results.append(
                (received, stats.transmissions, stats.delivered, stats.collided, collisions)
            )
        assert results[0] == results[1]

    def test_batch_of_one_delivered(self, kernel):
        received = []
        channel = ResponseChannel(kernel, lambda pkt, tick: received.append((pkt, tick)))
        channel.schedule_fhs_batch(100, 7, [fhs(1, 100, 7)])
        kernel.run_until(200)
        assert len(received) == 1
        assert channel.stats.delivered == 1
        assert channel.stats.transmissions == 1

    def test_empty_batch_is_noop(self, kernel):
        channel = ResponseChannel(kernel, lambda pkt, tick: None)
        channel.schedule_fhs_batch(100, 7, [])
        assert channel.stats.transmissions == 0
        assert channel.pending_count == 0
        kernel.run_until(200)

    def test_batch_joins_existing_group(self, kernel):
        received = []
        channel = ResponseChannel(kernel, lambda pkt, tick: received.append(pkt))
        channel.schedule_fhs(100, 7, fhs(1, 100, 7))
        channel.schedule_fhs_batch(100, 7, [fhs(2, 100, 7), fhs(3, 100, 7)])
        kernel.run_until(200)
        assert received == []
        assert channel.stats.collided == 3
        assert channel.stats.collision_events == 1
        # Announce order is preserved: singleton first, then the batch.
        assert channel.stats.collisions[0].senders == (
            str(BDAddr(1)),
            str(BDAddr(2)),
            str(BDAddr(3)),
        )

    def test_batch_copies_caller_buffer(self, kernel):
        received = []
        channel = ResponseChannel(kernel, lambda pkt, tick: received.append(pkt))
        buffer = [fhs(1, 100, 7)]
        channel.schedule_fhs_batch(100, 7, buffer)
        buffer.clear()  # callers reuse their batch list between advances
        kernel.run_until(200)
        assert len(received) == 1

    def test_batch_in_past_rejected(self, kernel):
        channel = ResponseChannel(kernel, lambda pkt, tick: None)
        kernel.run_until(100)
        with pytest.raises(ValueError):
            channel.schedule_fhs_batch(50, 7, [fhs(1, 50, 7)])
        assert channel.stats.transmissions == 0


class TestReachability:
    def test_out_of_range_filtered(self, kernel):
        received = []
        channel = ResponseChannel(
            kernel,
            lambda pkt, tick: received.append(pkt),
            reachable=lambda pkt, tick: pkt.sender != BDAddr(2),
        )
        channel.schedule_fhs(100, 7, fhs(1, 100, 7))
        channel.schedule_fhs(132, 7, fhs(2, 132, 7))
        kernel.run_until(200)
        assert [p.sender for p in received] == [BDAddr(1)]
        assert channel.stats.filtered == 1

    def test_out_of_range_does_not_cause_collision(self, kernel):
        """An unreachable transmitter cannot corrupt a reachable one."""
        received = []
        channel = ResponseChannel(
            kernel,
            lambda pkt, tick: received.append(pkt),
            reachable=lambda pkt, tick: pkt.sender == BDAddr(1),
        )
        channel.schedule_fhs(100, 7, fhs(1, 100, 7))
        channel.schedule_fhs(100, 7, fhs(2, 100, 7))
        kernel.run_until(200)
        assert [p.sender for p in received] == [BDAddr(1)]
        assert channel.stats.collision_events == 0

    def test_all_filtered_delivers_nothing(self, kernel):
        received = []
        channel = ResponseChannel(
            kernel, lambda pkt, tick: received.append(pkt),
            reachable=lambda pkt, tick: False,
        )
        channel.schedule_fhs(100, 7, fhs(1, 100, 7))
        kernel.run_until(200)
        assert received == []
        assert channel.stats.filtered == 1
