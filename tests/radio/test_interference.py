"""Tests for the inter-piconet interference model."""

from __future__ import annotations

import pytest

from repro.building.layouts import two_room_testbed
from repro.core.config import BIPSConfig
from repro.core.simulation import BIPSSimulation
from repro.radio.interference import (
    PER_NEIGHBOR_COLLISION_PROBABILITY,
    InterferenceEstimate,
    SharedBand,
)
from repro.sim.rng import RandomStream


@pytest.fixture
def band() -> SharedBand:
    return SharedBand(RandomStream(77, "band"))


class TestSharedBand:
    def test_isolated_piconet_never_corrupted(self, band):
        band.register("p1", lambda tick: True)
        assert all(not band.corrupts("p1", t) for t in range(1000))

    def test_idle_neighbor_does_not_interfere(self, band):
        band.register("p1", lambda tick: True)
        band.register("p2", lambda tick: False)  # never on the air
        band.connect("p1", "p2")
        assert band.active_neighbors("p1", 0) == 0
        assert all(not band.corrupts("p1", t) for t in range(1000))

    def test_active_neighbor_corrupts_at_about_1_in_79(self, band):
        band.register("p1", lambda tick: True)
        band.register("p2", lambda tick: True)
        band.connect("p1", "p2")
        hits = sum(1 for t in range(20_000) if band.corrupts("p1", t))
        expected = 20_000 * PER_NEIGHBOR_COLLISION_PROBABILITY
        assert 0.7 * expected <= hits <= 1.3 * expected

    def test_more_neighbors_more_loss(self, band):
        band.register("p1", lambda tick: True)
        for index in range(4):
            band.register(f"n{index}", lambda tick: True)
            band.connect("p1", f"n{index}")
        hits = sum(1 for t in range(20_000) if band.corrupts("p1", t))
        lone_expectation = 20_000 * PER_NEIGHBOR_COLLISION_PROBABILITY
        assert hits > 2.5 * lone_expectation

    def test_time_varying_activity(self, band):
        band.register("p1", lambda tick: True)
        band.register("p2", lambda tick: tick < 100)
        band.connect("p1", "p2")
        assert band.active_neighbors("p1", 50) == 1
        assert band.active_neighbors("p1", 150) == 0

    def test_duplicate_registration_rejected(self, band):
        band.register("p1", lambda tick: True)
        with pytest.raises(ValueError):
            band.register("p1", lambda tick: True)

    def test_connect_validation(self, band):
        band.register("p1", lambda tick: True)
        with pytest.raises(KeyError):
            band.connect("p1", "ghost")
        with pytest.raises(ValueError):
            band.connect("p1", "p1")

    def test_survival_predicate_inverse_of_corrupts(self, band):
        band.register("p1", lambda tick: True)
        band.register("p2", lambda tick: True)
        band.connect("p1", "p2")
        survives = band.survival_predicate("p1")
        losses = sum(1 for t in range(20_000) if not survives(None, t))
        assert losses > 0
        assert band.stats.corrupted == losses


class TestInterferenceEstimate:
    def test_zero_neighbors(self):
        assert InterferenceEstimate(0).packet_loss_probability == 0.0

    def test_one_neighbor(self):
        assert InterferenceEstimate(1).packet_loss_probability == pytest.approx(1 / 79)

    def test_monotone(self):
        losses = [InterferenceEstimate(n).packet_loss_probability for n in range(6)]
        assert losses == sorted(losses)
        assert losses[-1] < 0.07  # still small for 5 neighbours


class TestEndToEndInterference:
    def test_simulation_with_interference_still_tracks(self):
        sim = BIPSSimulation(
            plan=two_room_testbed(),
            config=BIPSConfig(seed=13, model_interference=True),
        )
        sim.add_user("u-a", "A")
        sim.add_user("u-b", "B")
        sim.login("u-a")
        sim.login("u-b")
        sim.follow_route("u-a", ["room-a"])
        sim.follow_route("u-b", ["room-b"])
        sim.run(until_seconds=300.0)
        assert sim.band is not None
        assert sim.band.stats.checks > 0
        # 1/79-per-neighbour losses do not break room-granule tracking.
        assert sim.server.locate("u-b", "A") == "room-a"
        assert sim.server.locate("u-a", "B") == "room-b"

    def test_band_absent_by_default(self):
        sim = BIPSSimulation(plan=two_room_testbed())
        assert sim.band is None
