"""Unit tests for the bench timing harness."""

from __future__ import annotations

import gc

import pytest

from repro.bench.harness import (
    BenchCase,
    BenchSkip,
    calibration_workload,
    CALIBRATION_ITERATIONS,
    measure_calibration,
    measure_case,
    median,
    percentile,
    run_suite,
    time_workload,
)


class TestStatistics:
    def test_median_odd(self):
        assert median([1.0, 2.0, 9.0]) == 2.0

    def test_median_even_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_percentile_nearest_rank(self):
        samples = [float(i) for i in range(1, 11)]
        assert percentile(samples, 0.9) == 9.0
        assert percentile(samples, 1.0) == 10.0
        assert percentile(samples, 0.0) == 1.0

    def test_percentile_single_sample(self):
        assert percentile([7.0], 0.9) == 7.0

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestTimeWorkload:
    def test_returns_elapsed_and_units(self):
        elapsed, units = time_workload(lambda: 42)
        assert units == 42
        assert elapsed >= 0.0

    def test_gc_restored_after_timing(self):
        assert gc.isenabled()
        time_workload(lambda: 1)
        assert gc.isenabled()

    def test_gc_restored_even_when_workload_raises(self):
        def boom() -> int:
            raise RuntimeError("workload failed")

        with pytest.raises(RuntimeError):
            time_workload(boom)
        assert gc.isenabled()

    def test_calibration_workload_unit_count(self):
        # The unit count is fixed modulo the low parity bit it keeps
        # alive; it must not drift with interpreter details.
        units = calibration_workload()
        assert units in (CALIBRATION_ITERATIONS, CALIBRATION_ITERATIONS + 1)


class TestMeasureCase:
    def test_basic_measurement(self):
        case = BenchCase(name="noop", factory=lambda: (lambda: 10), unit="ops")
        result = measure_case(case, repeats=3, calibration_rate=1000.0)
        assert not result.skipped
        assert result.units == 10
        assert result.repeats == 3
        assert len(result.samples_s) == 3
        assert result.samples_s == sorted(result.samples_s)
        assert result.rate_per_s > 0
        assert result.normalized == pytest.approx(result.rate_per_s / 1000.0)

    def test_skip_propagates_reason(self):
        def factory():
            raise BenchSkip("api not present here")

        case = BenchCase(name="skippy", factory=factory, unit="ops")
        result = measure_case(case, repeats=3, calibration_rate=1000.0)
        assert result.skipped
        assert result.skip_reason == "api not present here"
        assert result.rate_per_s == 0.0

    def test_nonpositive_repeats_raise(self):
        case = BenchCase(name="noop", factory=lambda: (lambda: 1), unit="ops")
        with pytest.raises(ValueError):
            measure_case(case, repeats=0, calibration_rate=1.0)

    def test_fresh_workload_per_repeat(self):
        builds = []

        def factory():
            builds.append(1)
            return lambda: 1

        case = BenchCase(name="fresh", factory=factory, unit="ops")
        measure_case(case, repeats=4, calibration_rate=1.0)
        assert len(builds) == 4


class TestRunSuite:
    def test_progress_called_per_case(self):
        cases = [
            BenchCase(name="one", factory=lambda: (lambda: 1), unit="ops"),
            BenchCase(name="two", factory=lambda: (lambda: 2), unit="ops"),
        ]
        seen: list[str] = []
        results, calibration_rate = run_suite(cases, repeats=1, progress=seen.append)
        assert seen == ["one", "two"]
        assert [r.name for r in results] == ["one", "two"]
        assert calibration_rate > 0

    def test_calibration_rate_positive(self):
        _, rate = measure_calibration(repeats=1)
        assert rate > 0
