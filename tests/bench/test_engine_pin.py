"""The committed baseline must keep the batched engine's pinned wins.

These assertions read ``benchmarks/baseline.json`` — the numbers the
repo ships, not a fresh measurement — so they are deterministic and
fail only when someone re-records the baseline with the batched
engine's advantage eroded (or drops/skips the swarm cases entirely).
The measurement itself is re-taken by the CI bench job; this test
guards the *recorded* contract: the 1000-piconet fleet case runs at
least 2x faster batched than object.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

BASELINE = Path(__file__).resolve().parents[2] / "benchmarks" / "baseline.json"

FLEET_PAIR = ("swarm_piconets_1000_object", "swarm_piconets_1000_batched")
PICONET_PAIR = ("swarm_piconet_100_object", "swarm_piconet_100_batched")

# The fleet ratio is the ISSUE's acceptance bar; the dense-piconet
# ratio is pinned lower, as a canary rather than a contract.
FLEET_MIN_RATIO = 2.0
PICONET_MIN_RATIO = 1.5


def _load_baseline() -> dict:
    assert BASELINE.is_file(), f"missing committed baseline: {BASELINE}"
    return json.loads(BASELINE.read_text())["benchmarks"]


@pytest.mark.parametrize("pair", [FLEET_PAIR, PICONET_PAIR])
def test_swarm_cases_recorded_and_not_skipped(pair: tuple[str, str]) -> None:
    benchmarks = _load_baseline()
    for name in pair:
        assert name in benchmarks, f"{name} missing from baseline"
        record = benchmarks[name]
        assert not record.get("skipped"), f"{name} recorded as skipped"
        assert record["normalized"] > 0.0, f"{name} has no normalized score"


@pytest.mark.parametrize(
    ("pair", "min_ratio"),
    [(FLEET_PAIR, FLEET_MIN_RATIO), (PICONET_PAIR, PICONET_MIN_RATIO)],
)
def test_batched_speedup_is_pinned(pair: tuple[str, str], min_ratio: float) -> None:
    benchmarks = _load_baseline()
    object_name, batched_name = pair
    object_score = benchmarks[object_name]["normalized"]
    batched_score = benchmarks[batched_name]["normalized"]
    ratio = batched_score / object_score
    assert ratio >= min_ratio, (
        f"{batched_name} is only {ratio:.2f}x {object_name} in the committed "
        f"baseline (needs >= {min_ratio}x); do not re-record the baseline "
        f"with the batched engine's advantage eroded"
    )


def test_engine_pair_workloads_match() -> None:
    """The object/batched cases must describe the same population.

    The speedup claim is meaningless if the paired cases drift apart,
    so their recorded workload parameters must be identical except for
    the engine knob itself.
    """
    from repro.bench.suite import select_suite

    cases = {case.name: dict(case.params) for case in select_suite("full")}
    for object_name, batched_name in (FLEET_PAIR, PICONET_PAIR):
        object_params = dict(cases[object_name])
        batched_params = dict(cases[batched_name])
        assert object_params.pop("engine") == "object"
        assert batched_params.pop("engine") == "batched"
        assert object_params == batched_params
