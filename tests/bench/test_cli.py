"""Exit-code and artefact tests for ``bips bench``.

The real suite takes seconds per case, so these tests monkeypatch the
suite resolver to a microscopic stand-in — the contract under test is
the CLI's control flow, not the workloads.
"""

from __future__ import annotations

import argparse
import json

import pytest

import repro.bench.cli as bench_cli
from repro.bench.harness import BenchCase, BenchSkip


def _tiny_suite(name: str) -> list[BenchCase]:
    return [
        BenchCase(name="tiny", factory=lambda: (lambda: 100), unit="ops"),
        BenchCase(
            name="absent",
            factory=_always_skip,
            unit="ops",
            smoke=False,
        ),
    ]


def _always_skip():
    raise BenchSkip("feature not built here")


def _args(tmp_path, **overrides) -> argparse.Namespace:
    defaults = dict(
        suite="full",
        repeats=2,
        threshold=0.20,
        baseline=str(tmp_path / "baseline.json"),
        out_dir=str(tmp_path),
        update_baseline=False,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


@pytest.fixture(autouse=True)
def tiny_suite(monkeypatch, tmp_path):
    monkeypatch.setattr(bench_cli, "select_suite", _tiny_suite)
    # Keep the baseline text rendering inside the sandbox too.
    monkeypatch.setattr(
        bench_cli, "DEFAULT_BASELINE_TEXT", str(tmp_path / "bench_baseline.txt")
    )


class TestExitCodes:
    def test_no_baseline_is_clean(self, tmp_path, capsys):
        assert bench_cli.run_bench(_args(tmp_path)) == 0
        assert "no baseline" in capsys.readouterr().err

    def test_update_baseline_writes_artifacts(self, tmp_path):
        args = _args(tmp_path, update_baseline=True)
        assert bench_cli.run_bench(args) == 0
        baseline = json.loads((tmp_path / "baseline.json").read_text())
        assert "tiny" in baseline["benchmarks"]
        assert baseline["benchmarks"]["absent"]["skipped"] is True
        assert (tmp_path / "bench_baseline.txt").exists()
        bench_files = list(tmp_path.glob("BENCH_*.json"))
        assert len(bench_files) == 1

    def test_matching_run_passes_the_gate(self, tmp_path):
        assert bench_cli.run_bench(_args(tmp_path, update_baseline=True)) == 0
        assert bench_cli.run_bench(_args(tmp_path)) == 0

    def test_regression_exits_one(self, tmp_path, capsys):
        assert bench_cli.run_bench(_args(tmp_path, update_baseline=True)) == 0
        baseline_path = tmp_path / "baseline.json"
        baseline = json.loads(baseline_path.read_text())
        # Pretend the recorded machine-neutral score was far higher.
        baseline["benchmarks"]["tiny"]["normalized"] *= 100.0
        baseline_path.write_text(json.dumps(baseline))
        assert bench_cli.run_bench(_args(tmp_path)) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_digest_mismatch_does_not_fail_the_gate(self, tmp_path):
        assert bench_cli.run_bench(_args(tmp_path, update_baseline=True)) == 0
        baseline_path = tmp_path / "baseline.json"
        baseline = json.loads(baseline_path.read_text())
        baseline["benchmarks"]["tiny"]["normalized"] *= 100.0
        baseline["benchmarks"]["tiny"]["config_digest"] = "stale-digest"
        baseline_path.write_text(json.dumps(baseline))
        assert bench_cli.run_bench(_args(tmp_path)) == 0

    def test_bad_repeats_is_usage_error(self, tmp_path):
        assert bench_cli.run_bench(_args(tmp_path, repeats=0)) == 2

    def test_bench_json_written_even_without_baseline(self, tmp_path):
        bench_cli.run_bench(_args(tmp_path))
        bench_files = list(tmp_path.glob("BENCH_*.json"))
        assert len(bench_files) == 1
        document = json.loads(bench_files[0].read_text())
        assert document["benchmarks"]["tiny"]["units"] == 100


class TestMainWiring:
    def test_default_out_dir_is_results_bench(self):
        # The repo root stays clean: artefacts default under results/.
        assert bench_cli.DEFAULT_OUT_DIR == "results/bench"
        parser = argparse.ArgumentParser()
        bench_cli.add_bench_parser(parser.add_subparsers(dest="command"))
        args = parser.parse_args(["bench"])
        assert args.out_dir == "results/bench"

    def test_bench_subcommand_reachable_from_bips(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "bench",
                "--suite",
                "smoke",
                "--repeats",
                "1",
                "--baseline",
                str(tmp_path / "baseline.json"),
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
