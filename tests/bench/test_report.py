"""Unit tests for bench report assembly and baseline comparison."""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchCase, CaseResult
from repro.bench.report import (
    SCHEMA_VERSION,
    build_report,
    case_digest,
    compare_to_baseline,
    git_revision,
    has_regression,
    load_json,
    render_text,
    write_json,
)


def _case(name: str, params=()) -> BenchCase:
    return BenchCase(name=name, factory=lambda: (lambda: 1), unit="ops", params=params)


def _result(name: str, normalized: float = 1.0, skipped: bool = False) -> CaseResult:
    if skipped:
        return CaseResult(
            name=name,
            unit="ops",
            units=0,
            repeats=0,
            median_s=0.0,
            p90_s=0.0,
            rate_per_s=0.0,
            normalized=0.0,
            skipped=True,
            skip_reason="not here",
        )
    return CaseResult(
        name=name,
        unit="ops",
        units=100,
        repeats=3,
        median_s=0.01,
        p90_s=0.02,
        rate_per_s=normalized * 1000.0,
        normalized=normalized,
        samples_s=[0.01, 0.01, 0.02],
    )


def _report(scores: dict, suite: str = "full") -> dict:
    cases = [_case(name) for name in scores]
    results = [
        _result(name, score) if score is not None else _result(name, skipped=True)
        for name, score in scores.items()
    ]
    return build_report(
        results, cases, calibration_rate=1000.0, suite=suite, repeats=3, git_rev="abc1234"
    )


class TestDigest:
    def test_stable_for_identical_cases(self):
        assert case_digest(_case("a", (("n", 5),))) == case_digest(
            _case("a", (("n", 5),))
        )

    def test_changes_with_params(self):
        assert case_digest(_case("a", (("n", 5),))) != case_digest(
            _case("a", (("n", 6),))
        )

    def test_changes_with_name(self):
        assert case_digest(_case("a")) != case_digest(_case("b"))


class TestBuildReport:
    def test_document_shape(self):
        report = _report({"alpha": 1.0, "beta": None})
        assert report["schema"] == SCHEMA_VERSION
        assert report["git_rev"] == "abc1234"
        assert report["suite"] == "full"
        assert report["calibration_rate_per_s"] == 1000.0
        alpha = report["benchmarks"]["alpha"]
        assert alpha["normalized"] == 1.0
        assert alpha["config_digest"]
        beta = report["benchmarks"]["beta"]
        assert beta["skipped"] is True
        assert beta["skip_reason"] == "not here"

    def test_roundtrip_through_json(self, tmp_path):
        report = _report({"alpha": 1.0})
        path = tmp_path / "bench.json"
        write_json(path, report)
        assert load_json(path) == report

    def test_load_rejects_non_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_json(path)


class TestCompare:
    def test_ok_within_threshold(self):
        comparisons = compare_to_baseline(_report({"a": 0.9}), _report({"a": 1.0}))
        assert [c.status for c in comparisons] == ["ok"]
        assert not has_regression(comparisons)

    def test_regression_beyond_threshold(self):
        comparisons = compare_to_baseline(_report({"a": 0.7}), _report({"a": 1.0}))
        assert [c.status for c in comparisons] == ["regression"]
        assert has_regression(comparisons)
        assert comparisons[0].ratio == pytest.approx(0.7)

    def test_improvement_beyond_threshold(self):
        comparisons = compare_to_baseline(_report({"a": 1.5}), _report({"a": 1.0}))
        assert [c.status for c in comparisons] == ["improved"]

    def test_case_missing_from_baseline_is_new(self):
        comparisons = compare_to_baseline(_report({"a": 1.0}), _report({}))
        assert [c.status for c in comparisons] == ["new"]

    def test_skipped_case_never_regresses(self):
        comparisons = compare_to_baseline(_report({"a": None}), _report({"a": 1.0}))
        assert [c.status for c in comparisons] == ["skipped"]
        assert not has_regression(comparisons)

    def test_skipped_baseline_entry_is_new(self):
        comparisons = compare_to_baseline(_report({"a": 1.0}), _report({"a": None}))
        assert [c.status for c in comparisons] == ["new"]

    def test_digest_mismatch_is_incomparable(self):
        report = _report({"a": 0.1})  # would be a huge "regression"...
        baseline = _report({"a": 1.0})
        baseline["benchmarks"]["a"]["config_digest"] = "different!"
        comparisons = compare_to_baseline(report, baseline)
        # ...but the workload changed, so the verdict is incomparable.
        assert [c.status for c in comparisons] == ["incomparable"]
        assert not has_regression(comparisons)

    def test_threshold_is_validated(self):
        with pytest.raises(ValueError):
            compare_to_baseline(_report({}), _report({}), threshold=1.5)

    def test_threshold_controls_the_gate(self):
        report, baseline = _report({"a": 0.85}), _report({"a": 1.0})
        loose = compare_to_baseline(report, baseline, threshold=0.20)
        tight = compare_to_baseline(report, baseline, threshold=0.10)
        assert [c.status for c in loose] == ["ok"]
        assert [c.status for c in tight] == ["regression"]


class TestRendering:
    def test_render_includes_cases_and_verdicts(self):
        report = _report({"alpha": 1.0, "beta": None})
        comparisons = compare_to_baseline(report, _report({"alpha": 1.0}))
        text = render_text(report, comparisons)
        assert "alpha" in text
        assert "[ok" in text
        assert "skipped: not here" in text
        assert text.endswith("\n")

    def test_git_revision_in_repo(self):
        assert git_revision() != ""
