"""Run the doctests embedded in module documentation."""

from __future__ import annotations

import doctest

import pytest

import repro.bluetooth.address
import repro.bluetooth.hopping
import repro.mobility.residence
import repro.sim.clock
import repro.sim.rng

MODULES = [
    repro.sim.clock,
    repro.sim.rng,
    repro.bluetooth.address,
    repro.bluetooth.hopping,
    repro.mobility.residence,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    # These modules genuinely carry examples; keep them exercised.
    if module in (repro.sim.clock, repro.mobility.residence):
        assert results.attempted > 0
